(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§7) from the simulation. Run with no arguments for the
   full suite, or with a subset of:

     table3 table4 table5 table6 fig3 fig5 fig6 fig7
     abi services fallback dram biglittle battery aarch64 bechamel

   Options: --runs N (fallback stress iterations, default 200; the paper
   uses 1000). Absolute numbers are simulator cycles/energies — the
   SHAPES (who wins, by what factor, where break-evens sit) are the
   reproduction targets; see EXPERIMENTS.md. *)

open Tk_harness
open Tk_stats
module Translator = Tk_dbt.Translator
module Power = Tk_energy.Power_model
module Soc = Tk_machine.Soc

let fx = Report.fx
let f2 = Report.f2

(* ------------- shared measured runs (computed lazily once) ----------- *)

let nat = lazy (Experiments.measure_native ())
let ark = lazy (Experiments.measure_mode Translator.Ark)
let mid = lazy (Experiments.measure_mode Translator.Mid)
let base = lazy (Experiments.measure_mode Translator.Baseline)

let overhead_of (r : Experiments.run) =
  Experiments.overhead ~native:(Lazy.force nat).Experiments.r_whole
    ~offloaded:r.Experiments.r_whole

(* ----------------------------- Table 3 ------------------------------- *)

let table3 () =
  let open Tk_isa.Spec in
  let implemented cat =
    List.length (List.filter (fun f -> f.category = cat) implemented_forms)
  in
  Report.table ~title:"Table 3: translation rules for v7a instruction forms"
    ~header:[ "Category"; "# forms"; "paper"; "v7m/guest"; "simulated" ]
    (List.map
       (fun (cat, paper) ->
         let lo, hi = host_range cat in
         [ category_name cat;
           string_of_int (count cat);
           string_of_int paper;
           (if lo = hi then string_of_int lo else Printf.sprintf "%d-%d" lo hi);
           string_of_int (implemented cat) ])
       paper_counts
    @ [ [ "Total"; string_of_int total; "558"; "";
          string_of_int (List.length implemented_forms) ] ]);
  let ok =
    List.for_all
      (fun f ->
        match f.repr with
        | None -> true
        | Some i -> (
          match Tk_dbt.Rules.classify i with
          | cat, _ -> cat = f.category
          | exception Tk_dbt.Rules.Untranslatable _ ->
            f.category = No_counterpart))
      implemented_forms
  in
  Printf.printf "classifier/spec agreement: %s\n" (if ok then "yes" else "NO")

(* ----------------------------- Table 4 ------------------------------- *)

let table4 () =
  let open Tk_isa.Types in
  let guests =
    [ at (Mem { ld = true; size = Word; rt = 0; rn = 1;
                off = Oreg (2, LSR, 4); idx = Post });
      at (Dp (ADD, true, 0, 1, Imm 0x80000001));
      at (Dp (SUB, false, 0, 1, Reg 2)) ]
  in
  Printf.printf "\n== Table 4: sample translation (G1-G3) ==\n";
  let ark_total = ref 0 in
  List.iter
    (fun g ->
      let _, hosts = Tk_dbt.Rules.legalize ~gpc:0x10010000 g in
      ark_total := !ark_total + List.length hosts;
      Printf.printf "G: %-28s ->\n" (to_string g);
      List.iter
        (fun h -> Printf.printf "     H: %s\n" (to_string ~wide:true h))
        hosts)
    guests;
  (* the same three instructions through the QEMU-style baseline *)
  let soc = Soc.create () in
  let image =
    Tk_isa.Asm.link ~base:Soc.kernel_base
      [ { Tk_isa.Asm.name = "g";
          items =
            List.map (fun i -> Tk_isa.Asm.Ins i) guests
            @ [ Tk_isa.Asm.Ins (at (Bx lr)) ] } ]
      []
  in
  Tk_machine.Mem.load_image soc.Soc.mem image;
  let ctx =
    { Translator.mode = Translator.Baseline;
      classify_target = (fun _ -> Translator.T_normal);
      block_limit = Translator.default_block_limit;
      read_guest =
        (fun a -> Tk_isa.V7a.decode (Tk_machine.Mem.ram_read soc.Soc.mem a 4));
      legalize = Translator.default_legalize }
  in
  let b = Translator.translate ctx ~gpc:Soc.kernel_base in
  let baseline_count = List.length b.Translator.b_emits - 4 in
  Printf.printf
    "ARK: 3 guest -> %d host instructions (paper: 7)\n\
     baseline: 3 guest -> ~%d host instructions (paper: 27)\n"
    !ark_total baseline_count

(* ----------------------------- Table 5 ------------------------------- *)

let count_lines dir =
  try
    let files = Sys.readdir dir in
    Array.fold_left
      (fun acc f ->
        if Filename.check_suffix f ".ml" then begin
          let ic = open_in (Filename.concat dir f) in
          let n = ref 0 in
          (try
             while true do
               ignore (input_line ic);
               incr n
             done
           with End_of_file -> close_in ic);
          acc + !n
        end
        else acc)
      0 files
  with Sys_error _ -> 0

let table5 () =
  let b = Tk_drivers.Platform.build_image () in
  let sizes = Tk_kernel.Image.layer_sizes b in
  let layer l = List.assoc_opt l sizes |> Option.value ~default:0 in
  let emu_syms = Tk_kernel.Kabi.emulated in
  let emu_guest_bytes =
    List.fold_left
      (fun acc (name, sz) -> if List.mem name emu_syms then acc + sz else acc)
      0 b.Tk_kernel.Image.image.Tk_isa.Asm.frag_sizes
  in
  let dbt_sloc = count_lines "lib/dbt" and emu_sloc = count_lines "lib/core" in
  Report.table ~title:"Table 5: source inventory (simulation equivalent)"
    ~header:[ "Component"; "amount"; "paper" ]
    [ [ "Existing kernel code, translated (guest instrs)";
        string_of_int
          (((Tk_kernel.Image.instructions b * 4) - emu_guest_bytes) / 4);
        "15K SLoC" ];
      [ "  of which device-specific (bytes)";
        string_of_int (layer Tk_kernel.Image.Device_specific); "-" ];
      [ "  of which driver libs (bytes)";
        string_of_int (layer Tk_kernel.Image.Driver_lib); "-" ];
      [ "  of which kernel libs (bytes)";
        string_of_int (layer Tk_kernel.Image.Kernel_lib); "-" ];
      [ "  of which kernel services (bytes)";
        string_of_int (layer Tk_kernel.Image.Kernel_service); "-" ];
      [ "Substituted with emulation (guest instrs)";
        string_of_int (emu_guest_bytes / 4); "25K SLoC" ];
      [ "New: DBT engine (OCaml lines)";
        (if dbt_sloc = 0 then "(run from repo root)"
         else string_of_int dbt_sloc);
        "9K SLoC" ];
      [ "New: emulated services / ARK (OCaml lines)";
        (if emu_sloc = 0 then "(run from repo root)"
         else string_of_int emu_sloc);
        "1K SLoC" ] ]

(* ----------------------------- Table 6 ------------------------------- *)

let table6 () =
  let c (p : Tk_machine.Core.params) cache_kb =
    [ p.Tk_machine.Core.cname;
      Printf.sprintf "%d MHz" p.Tk_machine.Core.freq_mhz;
      Printf.sprintf "%d KB" cache_kb;
      Printf.sprintf "%.0f mW" p.Tk_machine.Core.busy_mw;
      Printf.sprintf "%.0f mW" p.Tk_machine.Core.idle_mw ]
  in
  Report.table ~title:"Table 6: platform parameters (OMAP4460 model)"
    ~header:[ "Core"; "clock"; "LLC"; "busy power"; "idle power" ]
    [ c Soc.a9_params Soc.a9_cache_kb; c Soc.m3_params Soc.m3_cache_kb ]

(* ----------------------------- Figure 3 ------------------------------ *)

let fig3 () =
  let module V = Tk_kernel.Variants in
  let module L = Tk_kernel.Layout in
  let b = Tk_drivers.Platform.build_image () in
  let per_layer l =
    List.length (List.filter (fun (_, l') -> l' = l) b.Tk_kernel.Image.layers)
  in
  Report.table
    ~title:"Figure 3a: kernel functions referenced by suspend/resume"
    ~header:[ "Layer"; "# functions (minikern)"; "paper (v4.4)" ]
    [ [ "device-specific";
        string_of_int (per_layer Tk_kernel.Image.Device_specific); "1060" ];
      [ "driver libs"; string_of_int (per_layer Tk_kernel.Image.Driver_lib);
        "384" ];
      [ "kernel libs"; string_of_int (per_layer Tk_kernel.Image.Kernel_lib);
        "155" ];
      [ "kernel services";
        string_of_int (per_layer Tk_kernel.Image.Kernel_service); "845" ] ];
  let rows =
    List.map
      (fun ((a : L.t), (b' : L.t)) ->
        let fa = V.struct_fields a and fb = V.struct_fields b' in
        let types_changed =
          List.length (List.filter (fun (n, f) -> List.assoc n fb <> f) fa)
        in
        let ba = Tk_drivers.Platform.build_image ~layout:a () in
        let bb = Tk_drivers.Platform.build_image ~layout:b' () in
        (* compare the actual compiled code of each function *)
        let words (img : Tk_isa.Asm.image) name size =
          let addr = Tk_isa.Asm.symbol img name in
          List.init (size / 4) (fun i ->
              img.Tk_isa.Asm.words.((addr - img.Tk_isa.Asm.base) / 4 + i))
        in
        let ia = ba.Tk_kernel.Image.image
        and ib = bb.Tk_kernel.Image.image in
        let funcs_changed =
          List.length
            (List.filter
               (fun (name, size) ->
                 match
                   List.assoc_opt name ib.Tk_isa.Asm.frag_sizes
                 with
                 | Some size' ->
                   size <> size' || words ia name size <> words ib name size'
                 | None -> true)
               ia.Tk_isa.Asm.frag_sizes)
        in
        [ a.L.version ^ " -> " ^ b'.L.version;
          string_of_int funcs_changed; string_of_int types_changed; "0" ])
      [ (V.v3_16, L.v4_4); (L.v4_4, V.v4_9); (V.v4_9, V.v4_20) ]
  in
  Report.table ~title:"Figure 3b: ABI churn across kernel releases"
    ~header:
      [ "Releases"; "functions w/ changed code"; "types w/ changed layout";
        "Table 2 ABI changes" ]
    rows

(* ----------------------------- Figure 5 ------------------------------ *)

let fig5 () =
  let row (r : Experiments.run) =
    let w = r.Experiments.r_whole in
    let e = r.Experiments.r_energy in
    [ r.Experiments.r_label;
      Printf.sprintf "%.2f" w.Experiments.p_busy_ms;
      Printf.sprintf "%.2f" w.Experiments.p_idle_ms;
      Printf.sprintf "%.1f" (e.Power.e_core_busy /. 1000.);
      Printf.sprintf "%.1f" (e.Power.e_core_idle /. 1000.);
      Printf.sprintf "%.1f" (e.Power.e_dram /. 1000.);
      Printf.sprintf "%.1f" (e.Power.e_io /. 1000.);
      Printf.sprintf "%.1f" (Power.total e /. 1000.) ]
  in
  let n = Lazy.force nat and a = Lazy.force ark and b = Lazy.force base in
  Report.table
    ~title:
      "Figure 5: device suspend/resume — accumulated time (ms) and energy \
       (mJ)"
    ~header:
      [ "Config"; "busy"; "idle"; "E core busy"; "E core idle"; "E DRAM";
        "E IO"; "E total" ]
    [ row n; row a; row b ];
  let rel r =
    Power.total r.Experiments.r_energy /. Power.total n.Experiments.r_energy
  in
  Report.kv "Figure 5 headlines"
    [ ( "ARK energy vs native",
        Printf.sprintf "%s  (paper: 66%%)" (Report.pct (rel a)) );
      ( "baseline energy vs native",
        Printf.sprintf "%.1fx  (paper: 5.1x)" (rel b) );
      ( "ARK busy time vs native",
        Printf.sprintf "%s  (paper: ~16x)"
          (fx
             (a.Experiments.r_whole.Experiments.p_busy_ms
             /. n.Experiments.r_whole.Experiments.p_busy_ms)) );
      ( "ARK idle time vs native",
        Printf.sprintf "%s  (paper: equal)"
          (fx
             (a.Experiments.r_whole.Experiments.p_idle_ms
             /. n.Experiments.r_whole.Experiments.p_idle_ms)) ) ]

(* ----------------------------- Figure 6 ------------------------------ *)

let fig6 () =
  let n = Lazy.force nat in
  let per_dev (r : Experiments.run) =
    List.map2
      (fun (name, ns, nr) (name', os, orr) ->
        assert (name = name');
        ( name,
          Experiments.overhead ~native:ns ~offloaded:os,
          Experiments.overhead ~native:nr ~offloaded:orr ))
      n.Experiments.r_devices r.Experiments.r_devices
  in
  let a = per_dev (Lazy.force ark) in
  let m = per_dev (Lazy.force mid) in
  let b = per_dev (Lazy.force base) in
  let rows =
    List.map
      (fun ((name, sa, ra), ((_, sm, rm), (_, sb, rb))) ->
        [ name; fx sb; fx sm; fx sa; fx rb; fx rm; fx ra ])
      (List.combine a (List.combine m b))
  in
  Report.table
    ~title:
      "Figure 6: busy overhead per device (suspend | resume; M3 cycles / A9 \
       cycles)"
    ~header:
      [ "Device"; "base S"; "+reg S"; "ARK S"; "base R"; "+reg R"; "ARK R" ]
    rows;
  let avg f l =
    List.fold_left (fun x y -> x +. f y) 0.0 l /. float_of_int (List.length l)
  in
  Report.kv "Figure 6 aggregates"
    [ ( "ARK mean overhead",
        Printf.sprintf
          "suspend %s, resume %s, whole-phase %s (paper: 2.9 / 2.6 / 2.7)"
          (fx (avg (fun (_, s, _) -> s) a))
          (fx (avg (fun (_, _, r) -> r) a))
          (fx (overhead_of (Lazy.force ark))) );
      ( "baseline mean overhead",
        Printf.sprintf "%s whole-phase (paper: 13.9x, 5.2x worse than ARK)"
          (fx (overhead_of (Lazy.force base))) );
      ( "reg passthrough gain over baseline",
        Printf.sprintf "%s (paper: 2.5-5.5x)"
          (fx (overhead_of (Lazy.force base) /. overhead_of (Lazy.force mid)))
      );
      ( "control-transfer + remaining gain",
        Printf.sprintf "%s (paper: ~2x)"
          (fx (overhead_of (Lazy.force mid) /. overhead_of (Lazy.force ark)))
      ) ]

(* ----------------------------- Figure 7 ------------------------------ *)

let fig7 () =
  let module W = Tk_energy.Whatif in
  let overheads = [ 1.; 3.; 5.; 7.; 9.; 11.; 13.; 15. ] in
  let busy_fracs = [ 0.2; 0.41; 0.6; 0.8; 1.0 ] in
  let grid = W.grid ~overheads ~busy_fracs () in
  Report.table
    ~title:
      "Figure 7: ARK system energy relative to native (rows: native busy \
       fraction; cols: DBT overhead)"
    ~header:("busy\\ovh" :: List.map fx overheads)
    (List.map
       (fun (bf, series) ->
         Report.pct bf :: List.map (fun (_, v) -> Report.pct v) series)
       grid);
  let be100 = W.break_even ~busy_frac:1.0 () in
  let be20 = W.break_even ~busy_frac:0.2 () in
  let a = Lazy.force ark and n = Lazy.force nat in
  let measured_busy =
    n.Experiments.r_whole.Experiments.p_busy_ms
    /. (n.Experiments.r_whole.Experiments.p_busy_ms
       +. n.Experiments.r_whole.Experiments.p_idle_ms)
  in
  Report.kv "Figure 7 break-evens"
    [ ( "saves energy even at 100% busy below",
        Printf.sprintf "%s overhead (paper: 3.5x)" (fx be100) );
      ( "wastes energy even at 20% busy above",
        Printf.sprintf "%s overhead (paper: 5.2x)" (fx be20) );
      ( "measured ARK operating point",
        Printf.sprintf "(%.1fx overhead, %s native busy)" (overhead_of a)
          (Report.pct measured_busy) ) ]

(* ------------------------------- abi --------------------------------- *)

let abi () =
  let module V = Tk_kernel.Variants in
  Printf.printf "\n== Build once, work with many (§7.2) ==\n";
  Printf.printf "Table 2 ABI: %s + jiffies (12 funcs + 1 var)\n"
    (String.concat ", "
       (List.filter (fun s -> s <> "jiffies") Tk_kernel.Kabi.table2));
  List.iter
    (fun (lay : Tk_kernel.Layout.t) ->
      let ark = Ark_run.create ~layout:lay () in
      let r1 = Ark_run.suspend_resume_cycle ark in
      let r2 = Ark_run.suspend_resume_cycle ark in
      let ok =
        r1 = `Ok && r2 = `Ok
        && List.for_all
             (fun (_, s) -> s = 1)
             (Native_run.device_states ark.Ark_run.nat)
      in
      Printf.printf "kernel %-6s: %s\n" lay.Tk_kernel.Layout.version
        (if ok then "ARK binary works (2 cycles, clean)" else "FAILED"))
    V.all;
  (* and across kernel *configurations* (device subsets) x versions *)
  let configs =
    [ ("full (9 devices)", Tk_drivers.Platform.registration_order);
      ("defconfig-ish (4)", [ "reg"; "mmc"; "sd"; "wifi" ]);
      ("headless (3)", [ "reg"; "usb"; "flash" ]) ]
  in
  List.iter
    (fun (lay : Tk_kernel.Layout.t) ->
      List.iter
        (fun (cname, devices) ->
          let ark = Ark_run.create ~layout:lay ~devices () in
          let ok =
            Ark_run.suspend_resume_cycle ark = `Ok
            && List.for_all
                 (fun (_, s) -> s = 1)
                 (Native_run.device_states ark.Ark_run.nat)
          in
          Printf.printf "kernel %-6s x %-18s: %s\n"
            lay.Tk_kernel.Layout.version cname
            (if ok then "OK" else "FAILED"))
        configs)
    [ V.v3_16; Tk_kernel.Layout.v4_4; V.v4_20 ]

(* ----------------------------- services ------------------------------ *)

let services () =
  let a = Lazy.force ark in
  let ark_run = Ark_run.create () in
  ignore (Ark_run.suspend_resume_cycle ark_run);
  let c = ark_run.Ark_run.ark.Transkernel.Ark.counters in
  Printf.printf "\n== Emulated services (§7.3) ==\n";
  Printf.printf "share of busy execution: %s (paper: ~1%%)\n"
    (Report.pct
       (float_of_int a.Experiments.r_emu_cycles
       /. float_of_int a.Experiments.r_whole.Experiments.p_busy_cycles));
  Printf.printf "early interrupt stage: %d M3 cycles/interrupt (paper: 3.9K)\n"
    Transkernel.Ark.cost_early_irq;
  let service_counter (k, _) =
    let pre p =
      let n = String.length p in
      String.length k > n && String.sub k 0 n = p
    in
    pre "emu." || pre "hook."
  in
  Report.counters "downcall/hook counts for one offloaded cycle"
    (List.filter service_counter (Counters.to_assoc c));
  (* second warm cycle, rendered as a delta: translations are cached by
     now, so only the steady-state service traffic remains *)
  let before = Counters.snapshot c in
  ignore (Ark_run.suspend_resume_cycle ark_run);
  Report.counter_deltas "second (warm) cycle delta"
    (List.filter service_counter (Counters.diff before (Counters.snapshot c)))

(* ----------------------------- fallback ------------------------------ *)

let fallback ~runs () =
  Printf.printf
    "\n== Fallback stress (§7.3; paper: 1000 runs, 4 fallbacks, all WiFi \
     firmware) ==\n%!";
  let glitch_every = max 1 (runs / 4) in
  let total, fell, reasons, ark = Experiments.stress ~runs ~glitch_every () in
  Printf.printf "%d suspend/resume runs, %d fallbacks (%s)\n" total fell
    (String.concat "," reasons);
  Printf.printf
    "per-fallback cost: stack rewrite ~%d us, cache flush ~%d us, IPI ~%d us\n"
    (Transkernel.Ark.ns_stack_rewrite / 1000)
    (Transkernel.Ark.ns_cache_flush / 1000)
    (Transkernel.Ark.ns_ipi / 1000);
  let c = ark.Ark_run.ark.Transkernel.Ark.counters in
  Printf.printf "migrations: %d; cold calls skipped while draining: %d\n"
    (Counters.get c "fallback.migrations")
    (Counters.get c "fallback.drained_cold"
    + Counters.get c "fallback.cold_skipped")

(* ------------------------------- dram -------------------------------- *)

let dram () =
  let rate (r : Experiments.run) bytes =
    let active =
      r.Experiments.r_whole.Experiments.p_busy_ms
      +. r.Experiments.r_whole.Experiments.p_idle_ms
    in
    float_of_int bytes /. 1e6 /. (active /. 1e3)
  in
  let row (r : Experiments.run) =
    [ r.Experiments.r_label;
      f2 (rate r r.Experiments.r_rd_bytes) ^ " MB/s";
      f2 (rate r r.Experiments.r_wr_bytes) ^ " MB/s" ]
  in
  Report.table
    ~title:"DRAM activity (§7.3; paper: ARK 32/2 MB/s vs native 8/4 MB/s)"
    ~header:[ "Config"; "read"; "write" ]
    [ row (Lazy.force nat); row (Lazy.force ark); row (Lazy.force base) ];
  Printf.printf
    "shape target: ARK read rate well above native's (M3's %d KB LLC vs A9's \
     %d KB)\n"
    Soc.m3_cache_kb Soc.a9_cache_kb

(* ----------------------------- biglittle ----------------------------- *)

let biglittle () =
  let n = Lazy.force nat and a = Lazy.force ark in
  let e_native = Power.total n.Experiments.r_energy in
  let little =
    Tk_energy.Battery.little_relative ~a9:Soc.a9_params
      ~busy_ms:n.Experiments.r_whole.Experiments.p_busy_ms
      ~idle_ms:n.Experiments.r_whole.Experiments.p_idle_ms
      ~e_native_uj:e_native ()
  in
  Report.kv "big.LITTLE comparison (§7.4)"
    [ ("LITTLE core relative energy", Report.pct little ^ "  (paper: 77%)");
      ( "ARK relative energy",
        Report.pct (Power.total a.Experiments.r_energy /. e_native)
        ^ "  (paper: 51-66%)" );
      ( "why",
        Printf.sprintf "LITTLE idle power is %.0fx the peripheral core's"
          (Tk_energy.Battery.little_defaults.Tk_energy.Battery.l_idle_mw
          /. Soc.m3_params.Tk_machine.Core.idle_mw) ) ]

(* ------------------------------ battery ------------------------------ *)

let battery () =
  let n = Lazy.force nat and a = Lazy.force ark in
  let ark_rel =
    Power.total a.Experiments.r_energy /. Power.total n.Experiments.r_energy
  in
  let module B = Tk_energy.Battery in
  let rows =
    List.map
      (fun (interval, frac) ->
        let ext = B.extension ~susp_frac:frac ~ark_rel () in
        [ Printf.sprintf "%ds interval, %s of cycle energy" interval
            (Report.pct frac);
          Report.pct ext;
          Printf.sprintf "%.1f h/day" (B.hours_per_day ext) ])
      [ (5, 0.9); (30, 0.5) ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Battery-life extension (§7.4; measured ARK relative energy %s; \
          paper: 18%% / 7%%)"
         (Report.pct ark_rel))
    ~header:[ "Workload point"; "extension"; "hours per day" ]
    rows

(* ------------------------------ aarch64 ------------------------------ *)

let aarch64 () =
  Printf.printf
    "\n== §7.5 what-if: 64-bit guest on a 32-bit peripheral core (Table 7) \
     ==\n";
  Printf.printf
    "With an AArch64 guest the host can no longer pass registers through\n\
     (31 x 64-bit GPRs vs 13 x 32-bit) and must emulate them in memory —\n\
     the engine degenerates towards the register-emulating designs we\n\
     measured:\n\n";
  Printf.printf "  passthrough (ARK, 32-bit pair):   %s overhead\n"
    (fx (overhead_of (Lazy.force ark)));
  Printf.printf "  registers emulated (mid config):  %s overhead\n"
    (fx (overhead_of (Lazy.force mid)));
  Printf.printf "  full emulation (baseline):        %s overhead\n\n"
    (fx (overhead_of (Lazy.force base)));
  Printf.printf
    "so the 64/32 pairing forfeits a %.1fx-%.1fx slice of ARK's gain, as the \
     paper's Table 7 G1->H1 example illustrates.\n"
    (overhead_of (Lazy.force mid) /. overhead_of (Lazy.force ark))
    (overhead_of (Lazy.force base) /. overhead_of (Lazy.force ark))

(* ------------------------------ ablation ----------------------------- *)

(* Design-choice ablations DESIGN.md calls out: branch chaining, the
   translation-block size, the peripheral core's LLC (§7.5), and
   asynchronous device suspend (Linux's parallelized transitions [50]). *)
let ablation () =
  Printf.printf "\n== Ablations ==\n%!";
  let measure_cycle ?(tune = fun (_ : Ark_run.t) -> ()) () =
    let ark = Ark_run.create () in
    tune ark;
    ignore (Ark_run.suspend_resume_cycle ark);
    let m3 = (Ark_run.plat ark).Tk_drivers.Platform.soc.Soc.m3 in
    Tk_machine.Core.reset_activity m3;
    (match Ark_run.suspend_resume_cycle ark with
    | `Ok -> ()
    | `Fell_back r -> Printf.printf "  (fell back: %s)\n" r);
    (Tk_machine.Core.activity m3, ark)
  in
  (* 1. branch chaining *)
  let on, _ = measure_cycle () in
  let off, ark_off =
    measure_cycle ~tune:(fun a ->
        a.Ark_run.ark.Transkernel.Ark.engine.Tk_dbt.Engine.chain <- false)
      ()
  in
  Report.table ~title:"Ablation: direct-branch chaining (patching)"
    ~header:[ "Config"; "busy cycles"; "engine exits" ]
    [ [ "chaining on (ARK)"; string_of_int on.Tk_machine.Core.a_busy_cycles;
        "(patched)" ];
      [ "chaining off"; string_of_int off.Tk_machine.Core.a_busy_cycles;
        string_of_int
          ark_off.Ark_run.ark.Transkernel.Ark.engine
            .Tk_dbt.Engine.engine_exits ] ];
  Printf.printf "chaining saves %s of busy cycles\n"
    (Report.pct
       (1.
       -. float_of_int on.Tk_machine.Core.a_busy_cycles
          /. float_of_int off.Tk_machine.Core.a_busy_cycles));
  (* 2. translation-block size *)
  let rows =
    List.map
      (fun limit ->
        let act, ark =
          measure_cycle ~tune:(fun a ->
              a.Ark_run.ark.Transkernel.Ark.engine.Tk_dbt.Engine.block_limit
              <- limit)
            ()
        in
        [ string_of_int limit;
          string_of_int act.Tk_machine.Core.a_busy_cycles;
          string_of_int
            ark.Ark_run.ark.Transkernel.Ark.engine.Tk_dbt.Engine.blocks;
          string_of_int
            ark.Ark_run.ark.Transkernel.Ark.engine.Tk_dbt.Engine.host_emitted
        ])
      [ 4; 8; 16; 32 ]
  in
  Report.table ~title:"Ablation: translation-block size (guest instrs)"
    ~header:[ "limit"; "busy cycles"; "blocks"; "host emitted" ]
    rows;
  (* 3. peripheral-core LLC (§7.5 recommendation) *)
  let rows =
    List.map
      (fun kb ->
        let ark = Ark_run.create ~m3_cache_kb:kb () in
        ignore (Ark_run.suspend_resume_cycle ark);
        let m3 = (Ark_run.plat ark).Tk_drivers.Platform.soc.Soc.m3 in
        Tk_machine.Core.reset_activity m3;
        ignore (Ark_run.suspend_resume_cycle ark);
        let act = Tk_machine.Core.activity m3 in
        let mbps =
          float_of_int act.Tk_machine.Core.a_rd_bytes /. 1e6
          /. (float_of_int
                (act.Tk_machine.Core.a_busy_ps + act.Tk_machine.Core.a_idle_ps)
             /. 1e12)
        in
        [ string_of_int kb ^ " KB";
          string_of_int act.Tk_machine.Core.a_busy_cycles;
          f2 mbps ^ " MB/s";
          string_of_int act.Tk_machine.Core.a_cache_misses ])
      [ 16; 32; 64; 128 ]
  in
  Report.table ~title:"Ablation: peripheral-core LLC size (§7.5)"
    ~header:[ "LLC"; "busy cycles"; "DRAM read"; "misses" ]
    rows;
  (* 4. async device suspend *)
  let phase_ms runner =
    let t0, t1 = runner () in
    float_of_int (t1 - t0) /. 1e6
  in
  let native_phase async =
    phase_ms (fun () ->
        let natr = Native_run.create () in
        List.iter (fun d -> Native_run.set_async natr d async)
          [ "kb"; "cam"; "bt" ];
        let soc = natr.Native_run.plat.Tk_drivers.Platform.soc in
        let t0 = soc.Soc.clock.Tk_machine.Clock.now in
        ignore (Native_run.call natr "dpm_suspend" []);
        let t1 = soc.Soc.clock.Tk_machine.Clock.now in
        ignore (Native_run.call natr "dpm_resume" []);
        (t0, t1))
  in
  let ark_phase async =
    phase_ms (fun () ->
        let ark = Ark_run.create () in
        List.iter (fun d -> Native_run.set_async ark.Ark_run.nat d async)
          [ "kb"; "cam"; "bt" ];
        ignore (Ark_run.suspend_resume_cycle ark);
        let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
        let t0 = soc.Soc.clock.Tk_machine.Clock.now in
        (match Transkernel.Ark.run_phase ark.Ark_run.ark `Suspend with
        | Transkernel.Ark.Completed -> ()
        | Transkernel.Ark.Fell_back _ -> ());
        let t1 = soc.Soc.clock.Tk_machine.Clock.now in
        (match Transkernel.Ark.run_phase ark.Ark_run.ark `Resume with
        | Transkernel.Ark.Completed -> ()
        | Transkernel.Ark.Fell_back _ -> ());
        (t0, t1))
  in
  Report.table
    ~title:
      "Ablation: asynchronous device suspend (kb/cam/bt async, Linux [50])"
    ~header:[ "Config"; "sync suspend (ms)"; "async suspend (ms)" ]
    [ [ "native"; f2 (native_phase false); f2 (native_phase true) ];
      [ "ARK"; f2 (ark_phase false); f2 (ark_phase true) ] ]

(* ----------------------------- bechamel ------------------------------ *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let plat = lazy (Tk_drivers.Platform.create ()) in
  let t_translate =
    Test.make ~name:"table3/4: translate one kernel function"
      (Staged.stage (fun () ->
           let plat = Lazy.force plat in
           let soc = plat.Tk_drivers.Platform.soc in
           let e = Tk_dbt.Engine.create ~soc ~mode:Translator.Ark () in
           ignore
             (Tk_dbt.Engine.entry_host e
                (Tk_isa.Asm.symbol
                   plat.Tk_drivers.Platform.built.Tk_kernel.Image.image
                   "kmalloc"))))
  in
  let nat_run = lazy (Native_run.create ()) in
  let t_native =
    Test.make ~name:"fig5: one native suspend/resume cycle"
      (Staged.stage (fun () ->
           ignore (Native_run.suspend_resume_cycle (Lazy.force nat_run))))
  in
  let ark_run = lazy (Ark_run.create ()) in
  let t_ark =
    Test.make ~name:"fig5/6: one offloaded suspend/resume cycle"
      (Staged.stage (fun () ->
           ignore (Ark_run.suspend_resume_cycle (Lazy.force ark_run))))
  in
  let t_whatif =
    Test.make ~name:"fig7: what-if grid"
      (Staged.stage (fun () ->
           ignore
             (Tk_energy.Whatif.grid
                ~overheads:[ 1.; 5.; 10.; 15. ]
                ~busy_fracs:[ 0.2; 0.6; 1.0 ]
                ())))
  in
  let tests = [ t_translate; t_native; t_ark; t_whatif ] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 2.0) () in
  Printf.printf "\n== bechamel micro-benchmarks (simulator wall-clock) ==\n%!";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let res = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name r ->
          match Analyze.OLS.estimates r with
          | Some [ est ] ->
            Printf.printf "  %-45s %10.3f ms/run\n" name (est /. 1e6)
          | _ -> Printf.printf "  %-45s (no estimate)\n" name)
        res)
    tests

(* ---------------------------- throughput ----------------------------- *)

(* Simulator host throughput: simulated instructions retired per wall
   second, measured per tier — the native-A9 arm (Interp), the DBT-M3
   arm (Engine, block-at-a-time Ark mode), the superblock trace tier,
   and the superblock tier warm-started from a persistent translation
   cache. This is the metric host-side perf PRs move; the simulated
   cycle counters the cycle-NEUTRAL tiers must not move are pinned by
   test/test_neutrality.ml (the superblock tier is cycle-accounted and
   gated by `arksim report` instead). Records a BENCH_N.json (schema
   documented in README "Telemetry") so the perf trajectory is tracked
   across PRs and gated by `arksim report`. *)
let throughput ~smoke ~record () =
  let cycles = if smoke then 1 else 8 in
  Printf.printf
    "\n== simulator throughput (%d warm suspend/resume cycles per arm%s) ==\n%!"
    cycles
    (if smoke then ", smoke" else "");
  let t0 = Unix.gettimeofday () in
  (* native arm *)
  let nat = Native_run.create () in
  ignore (Native_run.suspend_resume_cycle nat);
  let a9 = nat.Native_run.plat.Tk_drivers.Platform.soc.Soc.cpu in
  let i0 = a9.Tk_machine.Core.instructions in
  let w0 = Unix.gettimeofday () in
  for _ = 1 to cycles do
    ignore (Native_run.suspend_resume_cycle nat)
  done;
  let native_wall = Unix.gettimeofday () -. w0 in
  let native_instrs = a9.Tk_machine.Core.instructions - i0 in
  let mips_native = float_of_int native_instrs /. native_wall /. 1e6 in
  Printf.printf "  native arm:      %9d sim instrs in %6.2f s -> %7.2f sim-MIPS\n%!"
    native_instrs native_wall mips_native;
  (* DBT arms: the cycle interleaves native freeze/thaw with the
     offloaded phases, so count both cores' retired instructions.
     [measure_first] includes the translation-heavy first cycle in the
     window — that is where a warm-started cache earns its keep. *)
  let dbt_arm ?(superblock = false) ?cache_dir ?(measure_first = false) label
      =
    let ark = Ark_run.create ~superblock ?cache_dir () in
    let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
    let count () =
      soc.Soc.m3.Tk_machine.Core.instructions
      + soc.Soc.cpu.Tk_machine.Core.instructions
    in
    if not measure_first then ignore (Ark_run.suspend_resume_cycle ark);
    let j0 = count () in
    let w = Unix.gettimeofday () in
    for _ = 1 to cycles do
      ignore (Ark_run.suspend_resume_cycle ark)
    done;
    let wall = Unix.gettimeofday () -. w in
    let instrs = count () - j0 in
    let mips = float_of_int instrs /. wall /. 1e6 in
    Printf.printf
      "  %-15s %9d sim instrs in %6.2f s -> %7.2f sim-MIPS\n%!" label instrs
      wall mips;
    Ark_run.save_cache ark;
    (instrs, mips)
  in
  let dbt_instrs, mips_dbt = dbt_arm "DBT arm:" in
  let sb_instrs, mips_sb = dbt_arm ~superblock:true "superblock:" in
  (* warm-start arm: one cold run populates a scratch cache dir, then a
     fresh engine replays it with its startup cycle inside the window *)
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tkbench-cache-%d" (Unix.getpid ()))
  in
  let _ = dbt_arm ~superblock:true ~cache_dir "sb cold+save:" in
  let sbw_instrs, mips_sbw =
    dbt_arm ~superblock:true ~cache_dir ~measure_first:true
      "sb warm-start:"
  in
  (if Sys.file_exists cache_dir then
     Array.iter
       (fun f -> Sys.remove (Filename.concat cache_dir f))
       (Sys.readdir cache_dir);
   try Unix.rmdir cache_dir with Unix.Unix_error _ -> ());
  let wall = Unix.gettimeofday () -. t0 in
  let file =
    match record with
    | Some f -> Some f
    | None when not smoke -> Some "BENCH_2.json"
    | None -> None
  in
  match file with
  | None -> ()
  | Some f ->
    (* BENCH schema: the gate metrics stay at top level (report's
       --only matches them bare), the deterministic instruction counts
       ride along for context *)
    let open Run_manifest in
    write_file f
      (Obj
         [ ("schema", Str "arksim-bench-v1");
           ( "meta",
             Obj [ ("git_rev", Str (git_rev ())); ("cycles", Int cycles) ] );
           ("sim_mips_native", Num mips_native);
           ("sim_mips_dbt", Num mips_dbt);
           ("sim_mips_superblock", Num mips_sb);
           ("sim_mips_superblock_warm", Num mips_sbw);
           ("superblock_speedup", Num (mips_sb /. mips_dbt));
           ("suite_wall_s", Num wall);
           ("native_instrs", Int native_instrs);
           ("dbt_instrs", Int dbt_instrs);
           ("superblock_instrs", Int sb_instrs);
           ("superblock_warm_instrs", Int sbw_instrs) ]);
    Printf.printf "  wrote %s\n%!" f

(* ------------------------ certifier / elision ------------------------ *)

(* The static-analysis tier's two runtime handles: certification cost
   (whole-image sweep over every formable superblock plan) and the
   SMC-clean probe elision win. The headline gate is
   [sim_mips_superblock] with the proven map installed — it must not
   regress below BENCH_2's map-less superblock arm, since elision only
   removes host-side probe work. Records BENCH_4.json. *)
let certifier_bench ~smoke ~record () =
  let cycles = if smoke then 1 else 8 in
  Printf.printf
    "\n== translation certifier + SMC-clean probe elision (%d warm \
     cycles per arm%s) ==\n%!"
    cycles
    (if smoke then ", smoke" else "");
  (* offline sweep: every plan the planner can form on the seed image *)
  let built = Tk_drivers.Platform.build_image () in
  let image = built.Tk_kernel.Image.image in
  let abi = built.Tk_kernel.Image.abi in
  let classify a =
    match abi.Tk_kernel.Kabi.name_of_addr a with
    | Some n when List.mem n Transkernel.Ark.emulated_services ->
      Translator.T_emu n
    | Some n when List.mem n Transkernel.Ark.hooked_services ->
      Translator.T_hook n
    | Some n when List.mem n Tk_kernel.Kabi.cold -> Translator.T_cold n
    | Some _ | None -> Translator.T_normal
  in
  let w0 = Unix.gettimeofday () in
  let cert = Tk_analysis.Certify.certify_image ~classify_target:classify image in
  let certify_wall = Unix.gettimeofday () -. w0 in
  Printf.printf
    "  certifier:       %d plans over %d states in %5.2f s (%d divergent)\n%!"
    cert.Tk_analysis.Certify.r_plans cert.Tk_analysis.Certify.r_states
    certify_wall cert.Tk_analysis.Certify.r_divergent;
  let w1 = Unix.gettimeofday () in
  let absr = Tk_analysis.Absint.analyze (Tk_analysis.Cfg.build image) in
  let absint_wall = Unix.gettimeofday () -. w1 in
  Printf.printf "  absint:          %d clean ranges in %5.2f s\n%!"
    (List.length absr.Tk_analysis.Absint.a_clean_ranges)
    absint_wall;
  (* runtime arms: superblock tier with and without the proven map *)
  let arm ~elide label =
    let ark = Ark_run.create ~superblock:true () in
    let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
    let e = ark.Ark_run.ark.Transkernel.Ark.engine in
    if elide then
      Tk_dbt.Engine.set_smc_map e absr.Tk_analysis.Absint.a_clean_ranges;
    let count () =
      soc.Soc.m3.Tk_machine.Core.instructions
      + soc.Soc.cpu.Tk_machine.Core.instructions
    in
    ignore (Ark_run.suspend_resume_cycle ark);
    let j0 = count () in
    let w = Unix.gettimeofday () in
    for _ = 1 to cycles do
      ignore (Ark_run.suspend_resume_cycle ark)
    done;
    let wall = Unix.gettimeofday () -. w in
    let instrs = count () - j0 in
    let mips = float_of_int instrs /. wall /. 1e6 in
    Printf.printf
      "  %-15s %9d sim instrs in %6.2f s -> %7.2f sim-MIPS (%d probes \
       elided)\n%!"
      label instrs wall mips e.Tk_dbt.Engine.probes_elided;
    (mips, e.Tk_dbt.Engine.probes_elided)
  in
  let mips_off, _ = arm ~elide:false "sb probes:" in
  let mips_on, elided = arm ~elide:true "sb elided:" in
  let file =
    match record with
    | Some f -> Some f
    | None when not smoke -> Some "BENCH_4.json"
    | None -> None
  in
  match file with
  | None -> ()
  | Some f ->
    let open Run_manifest in
    write_file f
      (Obj
         [ ("schema", Str "arksim-certify-bench-v1");
           ( "meta",
             Obj [ ("git_rev", Str (git_rev ())); ("cycles", Int cycles) ] );
           ("sim_mips_superblock", Num mips_on);
           ("sim_mips_superblock_noelide", Num mips_off);
           ("probe_elision_speedup", Num (mips_on /. mips_off));
           ("probes_elided", Int elided);
           ("certified_plans", Int cert.Tk_analysis.Certify.r_plans);
           ("certified_states", Int cert.Tk_analysis.Certify.r_states);
           ("divergent_plans", Int cert.Tk_analysis.Certify.r_divergent);
           ("clean_ranges", Int (List.length absr.Tk_analysis.Absint.a_clean_ranges));
           ("clean_words", Int (Tk_analysis.Absint.clean_words absr));
           ("certify_wall_s", Num certify_wall);
           ("absint_wall_s", Num absint_wall) ]);
    Printf.printf "  wrote %s\n%!" f

(* -------------------------------- sweep ------------------------------ *)

(* Campaign-runner scaling: the same stress campaign at increasing
   worker counts, with the digest pinned equal across all of them (the
   determinism invariant `arksim sweep` advertises). Speedup is
   host-dependent — on a single-core host the extra domains just
   time-slice — so the digest check is the hard gate and the timing
   table is telemetry. *)
let sweep_bench ~smoke ~record () =
  let module Campaign = Tk_campaign.Campaign in
  let tasks = if smoke then 2 else 8 in
  let cores = Domain.recommended_domain_count () in
  let job_points =
    List.sort_uniq compare (1 :: 2 :: 4 :: [ max 1 (cores - 2) ])
  in
  Printf.printf
    "\n== campaign scaling (stress, %d tasks; host has %d core(s)) ==\n%!"
    tasks cores;
  let runs =
    List.map
      (fun jobs ->
        let cfg =
          { (Campaign.default_config Campaign.Stress) with
            Campaign.tasks; jobs; seed = 1 }
        in
        let t = Campaign.run cfg in
        (jobs, t))
      job_points
  in
  let _, t1 = List.hd runs in
  let digests_agree =
    List.for_all (fun (_, t) -> t.Campaign.digest = t1.Campaign.digest) runs
  in
  Report.table ~title:"campaign wall time by worker count"
    ~header:[ "jobs"; "wall (s)"; "speedup vs -j1"; "digest" ]
    (List.map
       (fun (jobs, t) ->
         [ string_of_int jobs;
           f2 t.Campaign.wall_s;
           fx (t1.Campaign.wall_s /. max 1e-9 t.Campaign.wall_s);
           t.Campaign.digest ])
       runs);
  Printf.printf "digest invariant across -j: %s\n%!"
    (if digests_agree then "holds" else "VIOLATED");
  (match record with
  | None -> ()
  | Some f ->
    let open Run_manifest in
    write_file f
      (Obj
         ([ ("schema", Str "arksim-sweep-bench-v1");
            ( "meta",
              Obj
                [ ("git_rev", Str (git_rev ())); ("tasks", Int tasks);
                  ("host_cores", Int cores) ] );
            ("digest", Str t1.Campaign.digest);
            ("digests_agree", Int (if digests_agree then 1 else 0)) ]
         @ List.map
             (fun (jobs, t) ->
               (Printf.sprintf "wall_s_j%d" jobs, Num t.Campaign.wall_s))
             runs));
    Printf.printf "  wrote %s\n%!" f);
  if not digests_agree then exit 1

(* -------------------------------- fleet ------------------------------ *)

(* Fleet-scale population throughput (devices·wakeups/sec): the sharded
   snapshot runner versus the naive idiom it replaces — one fresh SoC
   world per device-instance. Both arms run the same arrival traces
   (same per-instance PRNG streams), so the simulated work is identical;
   what differs is the host cost of putting an instance into its
   defined starting state: the warmed DBT fixpoint (Fleet's contract —
   cache-pressure histograms and latency percentiles are simulated
   figures, and a cold world reports different ones: compulsory cache
   misses, unformed traces). The fleet pays boot + warmup once per
   shard and a sub-millisecond snapshot restore per instance; the naive
   implementation of the same specification pays boot + warmup per
   instance. The naive arm samples one instance per device
   configuration rather than the whole population — its per-instance
   cost is constant, and sampling keeps the bench wall time sane. *)
let fleet_bench ~smoke ~record () =
  let module Fleet = Tk_fleet.Fleet in
  let devices = if smoke then 12 else 480 in
  let jobs = 8 in
  let cores = Domain.recommended_domain_count () in
  let cfg =
    { Fleet.default_config with
      Fleet.devices; jobs;
      (* fleet-shaped workload: a large population of mostly-idle
         devices, each waking about once in the window — the regime the
         snapshot machinery exists for *)
      duration_ms = 10; mean_gap_ms = 40; shard_cap = 128 }
  in
  Printf.printf
    "\n== fleet population throughput (%d devices, -j%d; host has %d \
     core(s)) ==\n%!"
    devices jobs cores;
  (* naive arm: fresh world per instance, one instance per dconfig *)
  let sample_ids =
    List.init (min devices (4 * Array.length Fleet.dconfigs)) Fun.id
  in
  let lat = Sketch.create ()
  and pressure = Sketch.create ()
  and energy_sk = Sketch.create () in
  let w0 = Unix.gettimeofday () in
  let naive_wakeups =
    List.fold_left
      (fun acc id ->
        let dc = Fleet.dconfigs.(Fleet.config_of_instance id) in
        let ark =
          Ark_run.create ~devices:dc.Fleet.dc_devices
            ~superblock:dc.Fleet.dc_superblock ()
        in
        ignore (Fleet.warmup ark ~dc);
        let row =
          Fleet.run_instance cfg dc ark ~lat ~pressure ~energy_sk ~id
        in
        acc + row.Fleet.i_wakeups)
      0 sample_ids
  in
  let naive_wall = Unix.gettimeofday () -. w0 in
  let naive_wps = float_of_int naive_wakeups /. max 1e-9 naive_wall in
  (* fleet arm: same population shape, sharded snapshot runner *)
  let t = Fleet.run cfg in
  if Fleet.failed t then (
    (match Fleet.first_error t with
    | Some (i, msg) -> Printf.eprintf "fleet bench: shard %d failed: %s\n" i msg
    | None -> ());
    exit 1);
  let fleet_wakeups = Fleet.counter t "fleet.wakeups" in
  let fleet_wps = float_of_int fleet_wakeups /. max 1e-9 t.Fleet.wall_s in
  let speedup = fleet_wps /. max 1e-9 naive_wps in
  Report.table ~title:"population throughput (devices·wakeups/sec)"
    ~header:[ "arm"; "instances"; "wakeups"; "wall (s)"; "wakeups/s" ]
    [ [ "naive (fresh world/instance)"; string_of_int (List.length sample_ids);
        string_of_int naive_wakeups; f2 naive_wall; f2 naive_wps ];
      [ "fleet (shared snapshots)"; string_of_int devices;
        string_of_int fleet_wakeups; f2 t.Fleet.wall_s; f2 fleet_wps ] ];
  Printf.printf "fleet speedup over naive: %s  (digest %s)\n%!" (fx speedup)
    t.Fleet.digest;
  let file =
    match record with
    | Some f -> Some f
    | None when not smoke -> Some "BENCH_3.json"
    | None -> None
  in
  match file with
  | None -> ()
  | Some f ->
    let open Run_manifest in
    write_file f
      (Obj
         [ ("schema", Str "arksim-fleet-bench-v1");
           ( "meta",
             Obj
               [ ("git_rev", Str (git_rev ())); ("devices", Int devices);
                 ("jobs", Int jobs); ("host_cores", Int cores);
                 ("duration_ms", Int cfg.Fleet.duration_ms);
                 ("naive_sample", Int (List.length sample_ids)) ] );
           ("wakeups_per_s_fleet", Num fleet_wps);
           ("wakeups_per_s_naive", Num naive_wps);
           ("fleet_speedup", Num speedup);
           ("fleet_wakeups", Int fleet_wakeups);
           ("naive_wakeups", Int naive_wakeups);
           ("digest", Str t.Fleet.digest) ]);
    Printf.printf "  wrote %s\n%!" f

(* -------------------------------- trace ------------------------------ *)

(* Flight-recorder showcase: one traced + profiled offloaded cycle with
   its per-phase table and hot blocks, plus the host-side cost of
   tracing (the simulated counters are identical either way — pinned by
   test/test_neutrality.ml). *)
let trace_bench () =
  Printf.printf "\n== flight recorder (traced offloaded cycle) ==\n%!";
  let ark = Ark_run.create () in
  ignore (Ark_run.suspend_resume_cycle ark);  (* warm: translations done *)
  let tr = Ark_run.trace ark in
  let engine = ark.Ark_run.ark.Transkernel.Ark.engine in
  engine.Tk_dbt.Engine.profile <- true;
  (* untraced warm cycle wall-clock *)
  let w0 = Unix.gettimeofday () in
  ignore (Ark_run.suspend_resume_cycle ark);
  let untraced = Unix.gettimeofday () -. w0 in
  (* traced warm cycle *)
  Trace.enable tr;
  let w1 = Unix.gettimeofday () in
  ignore (Ark_run.suspend_resume_cycle ark);
  let traced = Unix.gettimeofday () -. w1 in
  Trace.disable tr;
  let devices = ark.Ark_run.nat.Native_run.devices in
  let phase_name code =
    let open Tk_kernel.Hyper in
    if code = ph_suspend_begin then "suspend_begin"
    else if code = ph_suspend_end then "suspend_end"
    else if code = ph_resume_begin then "resume_begin"
    else if code = ph_resume_end then "resume_end"
    else if code = 900 then "sleep_begin"
    else if code = 901 then "sleep_end"
    else if code >= ph_dev_mark then
      let i = (code - ph_dev_mark) / 10 in
      let k = (code - ph_dev_mark) mod 10 in
      Printf.sprintf "%s:%s"
        (Option.value ~default:(string_of_int i) (List.nth_opt devices i))
        (match k with
        | 0 -> "suspend.b" | 1 -> "suspend.e"
        | 2 -> "resume.b" | 3 -> "resume.e"
        | _ -> string_of_int k)
    else string_of_int code
  in
  Trace.summary ~phase_name tr;
  let rows = Tk_dbt.Engine.profile_blocks engine in
  Report.table ~title:"DBT hot blocks (top 10 by executions)"
    ~header:[ "guest_pc"; "execs"; "chain_hit"; "g_insts"; "h_words" ]
    (List.filteri (fun i _ -> i < 10) rows
    |> List.map (fun (bp : Tk_dbt.Engine.block_profile) ->
           [ Printf.sprintf "0x%x" bp.Tk_dbt.Engine.bp_guest;
             string_of_int bp.Tk_dbt.Engine.bp_execs;
             Report.pct (Tk_dbt.Engine.chain_rate bp);
             string_of_int bp.Tk_dbt.Engine.bp_guest_insts;
             string_of_int bp.Tk_dbt.Engine.bp_host_words ]));
  Printf.printf
    "\nhost cost of tracing: %.2f ms/cycle untraced, %.2f ms/cycle traced \
     (%.1fx; zero when disabled by construction)\n"
    (untraced *. 1e3) (traced *. 1e3) (traced /. untraced)

(* ---------------------------- span tracer ---------------------------- *)

(* The causal span tracer's two costs, on the warm superblock tier:
   the disabled probe (hoisted-bool pattern: must be measurement noise,
   gated at 5%) and the enabled recorder (gated at 25%). Also records
   spans/sec and the wakeup-tree reconciliation residual. Records
   BENCH_5.json; the absolute bars fail the bench itself, the recorded
   figures are gated across PRs by `arksim report`. *)
let spans_bench ~smoke ~record () =
  let cycles = if smoke then 2 else 8 in
  let reps = if smoke then 1 else 3 in
  Printf.printf
    "\n== span tracer overhead (%d warm superblock cycles per arm, best of \
     %d%s) ==\n%!"
    cycles reps
    (if smoke then ", smoke" else "");
  let t0 = Unix.gettimeofday () in
  let ark = Ark_run.create ~superblock:true () in
  let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
  let sp = soc.Soc.spans in
  let count () =
    soc.Soc.m3.Tk_machine.Core.instructions
    + soc.Soc.cpu.Tk_machine.Core.instructions
  in
  ignore (Ark_run.suspend_resume_cycle ark);  (* warm: translations done *)
  let arm label =
    (* best-of-reps: consecutive identical runs jitter by several
       percent on a shared host, and the off-vs-baseline delta we gate
       on is smaller than that jitter; the fastest rep of each arm is
       the least-perturbed sample *)
    let best = ref neg_infinity and tot_wall = ref 0.0 in
    for _ = 1 to reps do
      let i0 = count () in
      let w0 = Unix.gettimeofday () in
      for _ = 1 to cycles do
        ignore (Ark_run.suspend_resume_cycle ark)
      done;
      let wall = Unix.gettimeofday () -. w0 in
      tot_wall := !tot_wall +. wall;
      let mips = float_of_int (count () - i0) /. wall /. 1e6 in
      if mips > !best then best := mips
    done;
    Printf.printf "  %-12s %6.2f s -> %7.2f sim-MIPS\n%!" label !tot_wall
      !best;
    (!tot_wall, !best)
  in
  let _, mips_base = arm "baseline:" in
  let _, mips_off = arm "spans off:" in
  Tk_stats.Span.enable sp;
  let wall_on, mips_on = arm "spans on:" in
  let recorded = Tk_stats.Span.spans sp in
  let recon = Tk_stats.Span.reconcile sp in
  Tk_stats.Span.disable sp;
  let overhead base mips = max 0.0 ((base -. mips) /. base *. 100.0) in
  let off_pct = overhead mips_base mips_off in
  let on_pct = overhead mips_base mips_on in
  let spans_per_sec = float_of_int recorded /. wall_on in
  let residual_pct =
    100.0
    *. Float.max recon.Tk_stats.Span.r_max_dur_residual
         recon.Tk_stats.Span.r_max_attr_residual
  in
  Printf.printf
    "  overhead: %.2f%% off (bar 5%%), %.2f%% on (bar 25%%); %d spans \
     (%.0f/s); %d wakeup root(s), reconciliation residual %.4f%%\n%!"
    off_pct on_pct recorded spans_per_sec recon.Tk_stats.Span.r_roots
    residual_pct;
  let wall = Unix.gettimeofday () -. t0 in
  let file =
    match record with
    | Some f -> Some f
    | None when not smoke -> Some "BENCH_5.json"
    | None -> None
  in
  (match file with
  | None -> ()
  | Some f ->
    let open Run_manifest in
    write_file f
      (Obj
         [ ("schema", Str "arksim-bench-v1");
           ( "meta",
             Obj [ ("git_rev", Str (git_rev ())); ("cycles", Int cycles) ] );
           ("span_overhead_off_pct", Num off_pct);
           ("span_overhead_on_pct", Num on_pct);
           ("spans_per_sec", Num spans_per_sec);
           ("recon_residual_pct", Num residual_pct);
           ("sim_mips_spans_off", Num mips_off);
           ("sim_mips_spans_on", Num mips_on);
           ("suite_wall_s", Num wall);
           ("spans_recorded", Int recorded);
           ("wakeup_roots", Int recon.Tk_stats.Span.r_roots) ]);
    Printf.printf "  wrote %s\n%!" f);
  (* absolute bars: the disabled probe must be noise and the recorder
     cheap; the reconciliation ledger must hold its 0.1% bar *)
  if off_pct > 5.0 || on_pct > 25.0 || residual_pct > 0.1 then begin
    Printf.eprintf
      "spans bench: BAR EXCEEDED (off %.2f%% > 5, on %.2f%% > 25, or \
       residual %.4f%% > 0.1)\n"
      off_pct on_pct residual_pct;
    exit 1
  end

(* --------------------------- lockstep -------------------------------- *)

(* The bounded-quantum lockstep scheduler's throughput claim: a
   concurrent A9+M3 phase (guest CPU workload riding alongside the
   offloaded device phase) pushes per-SoC sim-MIPS — instructions
   simulated across BOTH cores per wall second — past the sequential
   scheduler's, because the phase wall-clock that used to buy only M3
   progress now buys A9 progress too. Three arms: the sequential
   scheduler, the deterministic interleave, and one-domain-per-core
   ([--concurrent-cores domains]; on a multicore host the barrier is a
   real synchronization point and domains beats interleave as well).
   Records BENCH_6.json; the concurrent-vs-sequential ratio is gated at
   1.5x here, the recorded figures across PRs by `arksim report`. *)
let lockstep_bench ~smoke ~record () =
  let cycles = if smoke then 2 else 6 in
  let reps = if smoke then 1 else 3 in
  (* size the A9 workload to span the ~13 ms M3 phase: the 6 MB scratch
     region above the code cache holds it comfortably *)
  let workload_bytes = 3 * 1024 * 1024 in
  Printf.printf
    "\n== lockstep scheduler (%d cycles per arm, best of %d%s) ==\n%!" cycles
    reps
    (if smoke then ", smoke" else "");
  let t0 = Unix.gettimeofday () in
  let arm label ~quantum run =
    (* fresh platform per arm (cold + one warmup cycle), then best-of-
       reps on the warm engine; per-SoC sim-MIPS counts both cores *)
    let ark = Ark_run.create ~quantum () in
    let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
    let count () =
      soc.Soc.m3.Tk_machine.Core.instructions
      + soc.Soc.cpu.Tk_machine.Core.instructions
    in
    ignore (run ark);
    let best = ref neg_infinity in
    for _ = 1 to reps do
      let i0 = count () in
      let w0 = Unix.gettimeofday () in
      for _ = 1 to cycles do
        ignore (run ark)
      done;
      let wall = Unix.gettimeofday () -. w0 in
      let mips = float_of_int (count () - i0) /. wall /. 1e6 in
      if mips > !best then best := mips
    done;
    Printf.printf "  %-12s %7.2f per-SoC sim-MIPS\n%!" label !best;
    (!best, ark)
  in
  let mips_seq, _ = arm "sequential:" ~quantum:0 Ark_run.suspend_resume_cycle in
  let mips_inter, _ =
    arm "interleave:" ~quantum:20_000
      (Ark_run.concurrent_cycle ~domains:false ~workload_bytes)
  in
  let mips_dom, ark_dom =
    arm "domains:" ~quantum:20_000
      (Ark_run.concurrent_cycle ~domains:true ~workload_bytes)
  in
  let speedup = mips_dom /. mips_seq in
  let host_cores = Domain.recommended_domain_count () in
  Printf.printf
    "  concurrent/sequential: %.2fx (bar 1.5x on >=2 host cores; this host \
     has %d); %d lockstep round(s), max skew %d ns\n%!"
    speedup host_cores ark_dom.Ark_run.ls_rounds
    ark_dom.Ark_run.ls_max_skew_ns;
  let wall = Unix.gettimeofday () -. t0 in
  let file =
    match record with
    | Some f -> Some f
    | None when not smoke -> Some "BENCH_6.json"
    | None -> None
  in
  (match file with
  | None -> ()
  | Some f ->
    let open Run_manifest in
    write_file f
      (Obj
         [ ("schema", Str "arksim-bench-v1");
           ( "meta",
             Obj
               [ ("git_rev", Str (git_rev ())); ("cycles", Int cycles);
                 ("workload_bytes", Int workload_bytes) ] );
           ("sim_mips_sequential", Num mips_seq);
           ("sim_mips_interleave", Num mips_inter);
           ("sim_mips_domains", Num mips_dom);
           ("lockstep_speedup_x", Num speedup);
           ("ls_rounds", Int ark_dom.Ark_run.ls_rounds);
           ("ls_max_skew_ns", Int ark_dom.Ark_run.ls_max_skew_ns);
           ("host_cores", Int host_cores);
           ("suite_wall_s", Num wall) ]);
    Printf.printf "  wrote %s\n%!" f);
  (* the 1.5x bar needs real core-level parallelism: on a single-core
     host the two lanes time-share and the ratio merely reflects the
     A9 workload riding along, so the bar is advisory there *)
  if (not smoke) && host_cores >= 2 && speedup < 1.5 then begin
    Printf.eprintf
      "lockstep bench: BAR MISSED (concurrent %.2fx < 1.5x sequential)\n"
      speedup;
    exit 1
  end

(* ------------------------------- main -------------------------------- *)

let all_names =
  [ "table3"; "table4"; "table5"; "table6"; "fig3"; "fig5"; "fig6"; "fig7";
    "abi"; "services"; "fallback"; "dram"; "biglittle"; "battery"; "aarch64";
    "ablation"; "trace"; "throughput"; "certifier"; "sweep"; "fleet";
    "spans"; "lockstep" ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let runs = ref 200 in
  let smoke = ref false in
  let record = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--runs" :: n :: rest ->
      runs := int_of_string n;
      parse acc rest
    | "--smoke" :: rest ->
      smoke := true;
      parse acc rest
    | "--record" :: f :: rest ->
      record := Some f;
      parse acc rest
    | x :: rest -> parse (x :: acc) rest
  in
  let selected = parse [] args in
  let selected = if selected = [] then all_names else selected in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match name with
      | "table3" -> table3 ()
      | "table4" -> table4 ()
      | "table5" -> table5 ()
      | "table6" -> table6 ()
      | "fig3" -> fig3 ()
      | "fig5" -> fig5 ()
      | "fig6" -> fig6 ()
      | "fig7" -> fig7 ()
      | "abi" -> abi ()
      | "services" -> services ()
      | "fallback" -> fallback ~runs:!runs ()
      | "dram" -> dram ()
      | "biglittle" -> biglittle ()
      | "battery" -> battery ()
      | "aarch64" -> aarch64 ()
      | "ablation" -> ablation ()
      | "trace" -> trace_bench ()
      | "throughput" -> throughput ~smoke:!smoke ~record:!record ()
      | "certifier" -> certifier_bench ~smoke:!smoke ~record:!record ()
      | "sweep" -> sweep_bench ~smoke:!smoke ~record:!record ()
      | "fleet" -> fleet_bench ~smoke:!smoke ~record:!record ()
      | "spans" -> spans_bench ~smoke:!smoke ~record:!record ()
      | "lockstep" -> lockstep_bench ~smoke:!smoke ~record:!record ()
      | "bechamel" -> bechamel ()
      | other -> Printf.eprintf "unknown bench %s\n" other)
    selected;
  Printf.printf "\n(benchmarks done in %.1f s)\n" (Unix.gettimeofday () -. t0)
