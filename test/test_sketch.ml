(* Percentile-sketch battery — the fleet digest leans on the sketch
   being exact-in-rank, bounded-in-value, and order-insensitive under
   merge. Three groups:

   - algebra: merging shard sketches is associative and commutative
     (bucket rows and quantiles identical for every association /
     permutation), with the empty sketch as identity;
   - accuracy: against a sort-based oracle on 100k samples from three
     shapes (uniform, heavy-tailed, constant), every reported quantile
     is within the documented 6.25% relative value bound of the sample
     holding that exact rank, and small values (< 32) are exact;
   - edges: empty and single-sample sketches, negative clamping,
     add_n, and row serialization round-trip (bucket stability). *)

module Sketch = Tk_stats.Sketch

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* deterministic sample streams — fixed seeds, never Random.self_init *)
let uniform_stream rng n bound =
  Array.init n (fun _ -> Random.State.int rng bound)

let heavy_stream rng n =
  (* exponentiated uniform: many small values, a long tail into the
     hundreds of millions — exercises many octaves *)
  Array.init n (fun _ ->
      let u = Random.State.float rng 1.0 in
      int_of_float (exp (u *. 19.0)))

let of_array a =
  let t = Sketch.create () in
  Array.iter (Sketch.add t) a;
  t

let quantiles = [ 0.0; 0.01; 0.25; 0.5; 0.9; 0.99; 0.999; 1.0 ]

let same_sketch msg a b =
  checkb (msg ^ ": rows equal") true (Sketch.rows a = Sketch.rows b);
  check (msg ^ ": count") (Sketch.count a) (Sketch.count b);
  List.iter
    (fun q ->
      check
        (Printf.sprintf "%s: q%.3f" msg q)
        (Sketch.quantile a q) (Sketch.quantile b q))
    quantiles

(* ------------------------------ algebra ------------------------------ *)

let test_merge_commutative () =
  let rng = Random.State.make [| 11 |] in
  let a = of_array (uniform_stream rng 5_000 1_000_000) in
  let b = of_array (heavy_stream rng 5_000) in
  same_sketch "a+b = b+a" (Sketch.merge a b) (Sketch.merge b a)

let test_merge_associative () =
  let rng = Random.State.make [| 12 |] in
  let a = of_array (uniform_stream rng 3_000 1_000) in
  let b = of_array (heavy_stream rng 3_000) in
  let c = of_array (uniform_stream rng 3_000 50) in
  same_sketch "(a+b)+c = a+(b+c)"
    (Sketch.merge (Sketch.merge a b) c)
    (Sketch.merge a (Sketch.merge b c))

let test_merge_identity () =
  let rng = Random.State.make [| 13 |] in
  let a = of_array (heavy_stream rng 2_000) in
  same_sketch "a+0 = a" (Sketch.merge a (Sketch.create ())) a;
  same_sketch "0+a = a" (Sketch.merge (Sketch.create ()) a) a

let test_merge_equals_union () =
  (* merging shard sketches must equal sketching the concatenated
     stream — the property the fleet aggregation depends on *)
  let rng = Random.State.make [| 14 |] in
  let xs = uniform_stream rng 4_000 100_000 in
  let ys = heavy_stream rng 4_000 in
  let merged = Sketch.merge (of_array xs) (of_array ys) in
  let whole = of_array (Array.append xs ys) in
  same_sketch "merge = union" merged whole

(* ------------------------ algebra (property) ------------------------- *)

(* QCheck sweep of the same laws over arbitrary bucket sets: sample
   lists mixing exact small values, mid-octave values and the deep
   tail, so merges cross every bucket regime. Equality is on [rows] —
   the canonical serialization the fleet digest hashes. *)
let gen_samples =
  QCheck.Gen.(
    list_size (int_range 0 200)
      (frequency
         [ (3, int_range 0 31);  (* exact buckets *)
           (4, int_range 32 100_000);  (* log-linear octaves *)
           (2, int_range 100_000 1_000_000_000);  (* deep tail *)
           (1, return 0) ]))

let arb_samples =
  QCheck.make gen_samples ~print:QCheck.Print.(list int)

let arb_samples3 = QCheck.triple arb_samples arb_samples arb_samples

let of_list l =
  let t = Sketch.create () in
  List.iter (Sketch.add t) l;
  t

let prop_merge_commutative =
  QCheck.Test.make ~count:500 ~name:"merge commutes on random buckets"
    (QCheck.pair arb_samples arb_samples) (fun (xs, ys) ->
      let a = of_list xs and b = of_list ys in
      Sketch.rows (Sketch.merge a b) = Sketch.rows (Sketch.merge b a))

let prop_merge_associative =
  QCheck.Test.make ~count:500 ~name:"merge associates on random buckets"
    arb_samples3 (fun (xs, ys, zs) ->
      let a = of_list xs and b = of_list ys and c = of_list zs in
      Sketch.rows (Sketch.merge (Sketch.merge a b) c)
      = Sketch.rows (Sketch.merge a (Sketch.merge b c)))

let prop_merge_identity =
  QCheck.Test.make ~count:500 ~name:"empty sketch is the merge identity"
    arb_samples (fun xs ->
      let a = of_list xs in
      Sketch.rows (Sketch.merge a (Sketch.create ())) = Sketch.rows a
      && Sketch.rows (Sketch.merge (Sketch.create ()) a) = Sketch.rows a)

(* serialization round-trip: replaying [rows] into a fresh sketch is
   bucket-stable (identical rows/count, hence identical quantiles), and
   the reloaded quantiles still honour the documented accuracy contract
   against the raw samples — exact below 32, 6.25% (1/16) relative
   above. The fleet digest hashes exactly this rows->load path when a
   shard ships its sketches to the collector. *)
let prop_rows_load_roundtrip =
  QCheck.Test.make ~count:500 ~name:"rows -> load round-trip holds 6.25%"
    arb_samples (fun xs ->
      let t = of_list xs in
      let u = Sketch.create () in
      Sketch.load u (Sketch.rows t);
      let stable =
        Sketch.rows u = Sketch.rows t && Sketch.count u = Sketch.count t
      in
      let sorted = Array.of_list xs in
      Array.sort compare sorted;
      let n = Array.length sorted in
      stable
      && (n = 0
         || List.for_all
              (fun phi ->
                let r = int_of_float (ceil (phi *. float_of_int n)) in
                let r = if r < 1 then 1 else if r > n then n else r in
                let want = sorted.(r - 1) in
                let tol = if want < 32 then 0 else (want + 15) / 16 in
                abs (Sketch.quantile u phi - want) <= tol)
              quantiles))

(* ------------------------------ accuracy ----------------------------- *)

let oracle_rank sorted phi =
  let n = Array.length sorted in
  let r = int_of_float (ceil (phi *. float_of_int n)) in
  let r = if r < 1 then 1 else if r > n then n else r in
  sorted.(r - 1)

let check_bound shape t sorted =
  List.iter
    (fun phi ->
      let got = Sketch.quantile t phi in
      let want = oracle_rank sorted phi in
      let tol =
        (* documented bound: exact below 32, 1/16 relative above *)
        if want < 32 then 0 else (want + 15) / 16
      in
      if abs (got - want) > tol then
        Alcotest.failf "%s q%.3f: got %d, oracle %d, tol %d" shape phi got
          want tol)
    quantiles

let test_oracle_100k () =
  let n = 100_000 in
  let rng = Random.State.make [| 21 |] in
  List.iter
    (fun (shape, samples) ->
      let t = of_array samples in
      check (shape ^ ": count") n (Sketch.count t);
      let sorted = Array.copy samples in
      Array.sort compare sorted;
      check_bound shape t sorted;
      check (shape ^ ": min") sorted.(0) (Sketch.min_value t);
      check (shape ^ ": max") sorted.(n - 1) (Sketch.max_value t))
    [ ("uniform", uniform_stream rng n 10_000_000);
      ("heavy", heavy_stream rng n);
      ("constant", Array.make n 4217) ]

let test_small_values_exact () =
  (* everything below 32 has its own bucket: quantiles are exact *)
  let rng = Random.State.make [| 22 |] in
  let samples = uniform_stream rng 10_000 32 in
  let t = of_array samples in
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  List.iter
    (fun phi ->
      check
        (Printf.sprintf "exact q%.3f" phi)
        (oracle_rank sorted phi) (Sketch.quantile t phi))
    quantiles

(* ------------------------------- edges ------------------------------- *)

let test_empty () =
  let t = Sketch.create () in
  check "count" 0 (Sketch.count t);
  check "sum" 0 (Sketch.sum t);
  check "min" 0 (Sketch.min_value t);
  check "max" 0 (Sketch.max_value t);
  check "q0.5" 0 (Sketch.quantile t 0.5);
  checkb "rows" true (Sketch.rows t = []);
  checkb "mean" true (Sketch.mean t = 0.0)

let test_single () =
  let t = Sketch.create () in
  Sketch.add t 123_456;
  List.iter
    (fun phi ->
      check (Printf.sprintf "single q%.3f" phi) 123_456
        (Sketch.quantile t phi))
    quantiles;
  check "count" 1 (Sketch.count t);
  check "min" 123_456 (Sketch.min_value t);
  check "max" 123_456 (Sketch.max_value t)

let test_negative_clamps () =
  let t = Sketch.create () in
  Sketch.add t (-5);
  check "clamped to 0" 0 (Sketch.quantile t 0.5);
  check "min" 0 (Sketch.min_value t)

let test_add_n () =
  let a = Sketch.create () and b = Sketch.create () in
  Sketch.add_n a 777 1000;
  for _ = 1 to 1000 do
    Sketch.add b 777
  done;
  same_sketch "add_n = repeated add" a b;
  Sketch.add_n a 9 0;
  Sketch.add_n a 9 (-3);
  check "n<=0 is a no-op" 1000 (Sketch.count a)

let test_rows_roundtrip () =
  let rng = Random.State.make [| 31 |] in
  let t = of_array (heavy_stream rng 20_000) in
  let u = Sketch.create () in
  Sketch.load u (Sketch.rows t);
  (* bucket-stable: reloaded rows land in exactly the same buckets *)
  checkb "rows stable" true (Sketch.rows t = Sketch.rows u);
  check "count stable" (Sketch.count t) (Sketch.count u)

let test_bucket_bounds_cover () =
  (* every value maps to a bucket whose [lo, hi] contains it, and
     bucket widths respect the 1/16 relative bound *)
  let rng = Random.State.make [| 32 |] in
  for _ = 1 to 50_000 do
    let v = Random.State.full_int rng max_int in
    let idx = Sketch.bucket_of v in
    let lo, hi = Sketch.bounds idx in
    if not (lo <= v && v <= hi) then
      Alcotest.failf "bucket %d [%d,%d] misses %d" idx lo hi v;
    if lo >= 32 && (hi - lo) * 16 > lo then
      Alcotest.failf "bucket %d [%d,%d] too wide" idx lo hi
  done

let () =
  Alcotest.run "sketch"
    [ ( "algebra",
        [ Alcotest.test_case "merge commutative" `Quick
            test_merge_commutative;
          Alcotest.test_case "merge associative" `Quick
            test_merge_associative;
          Alcotest.test_case "merge identity" `Quick test_merge_identity;
          Alcotest.test_case "merge equals union" `Quick
            test_merge_equals_union ] );
      ( "algebra (property)",
        [ QCheck_alcotest.to_alcotest prop_merge_commutative;
          QCheck_alcotest.to_alcotest prop_merge_associative;
          QCheck_alcotest.to_alcotest prop_merge_identity;
          QCheck_alcotest.to_alcotest prop_rows_load_roundtrip ] );
      ( "accuracy",
        [ Alcotest.test_case "oracle 100k x3 shapes" `Quick
            test_oracle_100k;
          Alcotest.test_case "small values exact" `Quick
            test_small_values_exact ] );
      ( "edges",
        [ Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single sample" `Quick test_single;
          Alcotest.test_case "negative clamps" `Quick test_negative_clamps;
          Alcotest.test_case "add_n" `Quick test_add_n;
          Alcotest.test_case "rows roundtrip" `Quick test_rows_roundtrip;
          Alcotest.test_case "bucket bounds cover" `Quick
            test_bucket_bounds_cover ] ) ]
