(* Cycle-neutrality regression — the perf-PR guard.

   Host-side performance work on the two interpreters (pre-decoded
   instruction arrays, fast-path memory access, fused cycle charges)
   must never change the simulated timing model: it may change host
   wall-clock only. These goldens were captured from the seed
   implementation — one cold boot plus one suspend/resume cycle in each
   of the four execution arms — and pin busy cycles, instruction
   counts, cache hit/miss counts and DRAM traffic bit-exactly.

   Run the binary with TK_CAPTURE=1 to print fresh values. Re-capturing
   is only legitimate when the *model* intentionally changes (new cost
   knobs, different cache geometry), never for host-side optimization.

   The second half checks the chaining ablation: patching direct
   branches into the code cache must not change what the guest computes,
   only how many engine exits it costs — this guards the patch-time
   decode-array invalidation. *)

open Tk_machine
module Translator = Tk_dbt.Translator
module Native_run = Tk_harness.Native_run
module Ark_run = Tk_harness.Ark_run

type nums = {
  cpu_cycles : int;  (** A9 busy cycles since boot *)
  m3_cycles : int;  (** M3 busy cycles since boot *)
  instrs : int;  (** instructions retired on the arm's active core *)
  hits : int;  (** active core's cache hits *)
  misses : int;
  rd_bytes : int;  (** DRAM fill traffic of the active core's cache *)
  wr_bytes : int;  (** DRAM writeback traffic *)
}

let pp n =
  Printf.sprintf
    "{ cpu_cycles = %d; m3_cycles = %d; instrs = %d;\n\
    \    hits = %d; misses = %d; rd_bytes = %d; wr_bytes = %d }"
    n.cpu_cycles n.m3_cycles n.instrs n.hits n.misses n.rd_bytes n.wr_bytes

let of_soc (soc : Soc.t) ~(active : Core.t) =
  { cpu_cycles = soc.Soc.cpu.Core.busy_cycles;
    m3_cycles = soc.Soc.m3.Core.busy_cycles;
    instrs = active.Core.instructions;
    hits = active.Core.cache.Cache.hits;
    misses = active.Core.cache.Cache.misses;
    rd_bytes = active.Core.cache.Cache.rd_bytes;
    wr_bytes = active.Core.cache.Cache.wr_bytes }

let run_native () =
  let nat = Native_run.create () in
  ignore (Native_run.suspend_resume_cycle nat);
  let soc = nat.Native_run.plat.Tk_drivers.Platform.soc in
  of_soc soc ~active:soc.Soc.cpu

let run_mode mode =
  let ark = Ark_run.create ~mode () in
  (match Ark_run.suspend_resume_cycle ark with
  | `Ok -> ()
  | `Fell_back r -> Alcotest.failf "unexpected fallback: %s" r);
  let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
  of_soc soc ~active:soc.Soc.m3

(* ------------------- goldens (captured from seed) -------------------- *)

let golden_native =
  { cpu_cycles = 2219090; m3_cycles = 0; instrs = 1624350;
    hits = 2533188; misses = 4234; rd_bytes = 135488; wr_bytes = 192 }

let golden_ark =
  { cpu_cycles = 49415; m3_cycles = 4518853; instrs = 1546878;
    hits = 2415768; misses = 7733; rd_bytes = 247456; wr_bytes = 199264 }

let golden_mid =
  { cpu_cycles = 49415; m3_cycles = 6480514; instrs = 2333709;
    hits = 3983155; misses = 9132; rd_bytes = 292224; wr_bytes = 220960 }

let golden_baseline =
  { cpu_cycles = 49415; m3_cycles = 23175135; instrs = 9399843;
    hits = 14717963; misses = 19799; rd_bytes = 633568; wr_bytes = 316800 }

let check_nums label golden got =
  if got <> golden then
    Alcotest.failf "%s: simulated counters drifted from the seed model\n  golden: %s\n  got:    %s"
      label (pp golden) (pp got)

let test_native () = check_nums "native" golden_native (run_native ())
let test_ark () = check_nums "ARK" golden_ark (run_mode Translator.Ark)
let test_mid () = check_nums "Mid" golden_mid (run_mode Translator.Mid)

let test_baseline () =
  check_nums "Baseline" golden_baseline (run_mode Translator.Baseline)

(* ------------------- tracing neutrality ------------------------------ *)

(* The flight recorder must be simulation-neutral: a cycle run with
   tracing enabled has to reproduce the exact same goldens as one run
   with it disabled. Guards against any emission site accidentally
   charging simulated cycles or perturbing model state. *)

let run_native_traced () =
  let nat = Native_run.create () in
  Tk_stats.Trace.enable (Native_run.trace nat);
  ignore (Native_run.suspend_resume_cycle nat);
  let soc = nat.Native_run.plat.Tk_drivers.Platform.soc in
  of_soc soc ~active:soc.Soc.cpu

let run_mode_traced mode =
  let ark = Ark_run.create ~mode () in
  Tk_stats.Trace.enable (Ark_run.trace ark);
  (match Ark_run.suspend_resume_cycle ark with
  | `Ok -> ()
  | `Fell_back r -> Alcotest.failf "unexpected fallback: %s" r);
  let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
  of_soc soc ~active:soc.Soc.m3

let test_native_traced () =
  check_nums "native (tracing on)" golden_native (run_native_traced ())

let test_ark_traced () =
  check_nums "ARK (tracing on)" golden_ark (run_mode_traced Translator.Ark)

let test_baseline_traced () =
  check_nums "Baseline (tracing on)" golden_baseline
    (run_mode_traced Translator.Baseline)

(* ------------------- chaining on/off equivalence --------------------- *)

(* Architectural end state of a run: what the guest computed, independent
   of how many cycles it took. Timing-dependent words (jiffies, busy
   accounting) are deliberately excluded — chaining changes cycle counts,
   so wall-time-derived guest state legitimately differs. *)
let arch_state (ark : Ark_run.t) =
  let nat = ark.Ark_run.nat in
  ( Native_run.device_states nat,
    List.rev nat.Native_run.console,
    nat.Native_run.warns,
    nat.Native_run.last_exit_r0 )

let test_chaining_equivalence () =
  let run chain =
    let ark = Ark_run.create () in
    ark.Ark_run.ark.Transkernel.Ark.engine.Tk_dbt.Engine.chain <- chain;
    (match Ark_run.suspend_resume_cycle ark with
    | `Ok -> ()
    | `Fell_back r -> Alcotest.failf "fallback with chain=%b: %s" chain r);
    (match Ark_run.suspend_resume_cycle ark with
    | `Ok -> ()
    | `Fell_back r -> Alcotest.failf "fallback with chain=%b: %s" chain r);
    ark
  in
  let on = run true and off = run false in
  (* the chained run actually patched sites (else this test guards
     nothing), the unchained one did not *)
  Alcotest.(check bool) "chaining patched sites" true
    (on.Ark_run.ark.Transkernel.Ark.engine.Tk_dbt.Engine.patches > 0);
  Alcotest.(check int) "no patches with chaining off" 0
    off.Ark_run.ark.Transkernel.Ark.engine.Tk_dbt.Engine.patches;
  let s_on, c_on, w_on, r_on = arch_state on in
  let s_off, c_off, w_off, r_off = arch_state off in
  Alcotest.(check (list (pair string int))) "device states" s_off s_on;
  Alcotest.(check (list char)) "console output" c_off c_on;
  Alcotest.(check (list int)) "warn codes" w_off w_on;
  Alcotest.(check int) "final exit r0" r_off r_on

let () =
  if Sys.getenv_opt "TK_CAPTURE" <> None then begin
    Printf.printf "let golden_native =\n  %s\n" (pp (run_native ()));
    Printf.printf "let golden_ark =\n  %s\n" (pp (run_mode Translator.Ark));
    Printf.printf "let golden_mid =\n  %s\n" (pp (run_mode Translator.Mid));
    Printf.printf "let golden_baseline =\n  %s\n"
      (pp (run_mode Translator.Baseline));
    exit 0
  end;
  Alcotest.run "neutrality"
    [ ( "cycle-neutrality vs seed goldens",
        [ Alcotest.test_case "native arm" `Quick test_native;
          Alcotest.test_case "ARK arm" `Quick test_ark;
          Alcotest.test_case "Mid arm" `Quick test_mid;
          Alcotest.test_case "Baseline arm" `Quick test_baseline ] );
      ( "tracing neutrality",
        [ Alcotest.test_case "native arm (tracing on)" `Quick
            test_native_traced;
          Alcotest.test_case "ARK arm (tracing on)" `Quick test_ark_traced;
          Alcotest.test_case "Baseline arm (tracing on)" `Quick
            test_baseline_traced ] );
      ( "chaining ablation",
        [ Alcotest.test_case "on/off architectural equivalence" `Quick
            test_chaining_equivalence ] ) ]
