(* Fleet determinism battery, mirroring test_campaign.ml one layer up.

   The fleet digest — meta + per-shard metrics + aggregate, everything
   except the host section — must be a function of (population,
   arrival, seed) alone. Two independent freedoms have to be
   unobservable: *scheduling* (shards on 1 domain vs 8) and *instance
   order inside a shard* (the Chrono/Reversed knob). The second is the
   sharper property: every instance interleaves over the same restored
   snapshot, so order-independence means snapshot restore plus the
   per-instance RNG streams really do isolate instances from each
   other. Arithmetic backs it: per-instance energy is integered before
   summation and sketch buckets are commutative counters, so no
   float-summation-order can leak the schedule into the digest. *)

module Fleet = Tk_fleet.Fleet
module Arrival = Tk_fleet.Arrival
module J = Tk_harness.Run_manifest

let small kind =
  { Fleet.default_config with
    Fleet.devices = 12;
    arrival = kind;
    seed = 7;
    duration_ms = 12;
    mean_gap_ms = 8 }

(* strip the host section: everything else must be byte-identical *)
let deterministic_part doc =
  match doc with
  | J.Obj fields ->
    J.to_string (J.Obj (List.filter (fun (k, _) -> k <> "host") fields))
  | _ -> Alcotest.fail "fleet doc is not an object"

(* the jobs=1 reference runs are shared across test cases (each fleet
   run warms six worlds; no point paying that twice for the same
   config) *)
let ref_run =
  let memo =
    List.map (fun k -> (k, lazy (Fleet.run (small k)))) Arrival.all
  in
  fun kind -> Lazy.force (List.assoc kind memo)

let test_jobs_invariance kind () =
  let t1 = ref_run kind in
  let t8 = Fleet.run { (small kind) with Fleet.jobs = 8 } in
  Alcotest.(check bool) "clean runs" false
    (Fleet.failed t1 || Fleet.failed t8);
  Alcotest.(check string)
    (Arrival.kind_name kind ^ ": digest is jobs-independent")
    t1.Fleet.digest t8.Fleet.digest;
  Alcotest.(check string)
    (Arrival.kind_name kind ^ ": whole doc identical modulo host")
    (deterministic_part t1.Fleet.doc)
    (deterministic_part t8.Fleet.doc)

let test_schedule_invariance () =
  (* run every shard's instances in reverse: per-instance RNG streams
     and snapshot isolation must make the reordering invisible *)
  let fwd = ref_run Arrival.Poisson in
  let rev =
    Fleet.run { (small Arrival.Poisson) with Fleet.schedule = Fleet.Reversed }
  in
  Alcotest.(check string) "digest survives instance reordering"
    fwd.Fleet.digest rev.Fleet.digest;
  Alcotest.(check string) "whole doc identical modulo host"
    (deterministic_part fwd.Fleet.doc)
    (deterministic_part rev.Fleet.doc)

let test_arrival_kinds_distinct () =
  (* the three generators must actually produce different work *)
  let d kind = (ref_run kind).Fleet.digest in
  let p = d Arrival.Poisson
  and b = d Arrival.Bursty
  and u = d Arrival.Diurnal in
  Alcotest.(check bool) "poisson <> bursty" false (p = b);
  Alcotest.(check bool) "bursty <> diurnal" false (b = u);
  Alcotest.(check bool) "poisson <> diurnal" false (p = u)

let test_seed_sensitivity () =
  let t_a = ref_run Arrival.Poisson in
  let t_b = Fleet.run { (small Arrival.Poisson) with Fleet.seed = 8 } in
  Alcotest.(check bool) "seed changes the digest" false
    (t_a.Fleet.digest = t_b.Fleet.digest)

let test_population_accounting () =
  let t = ref_run Arrival.Bursty in
  Alcotest.(check int) "every instance accounted for"
    t.Fleet.config.Fleet.devices
    (Fleet.counter t "fleet.instances");
  Alcotest.(check int) "no covered-word flushes mid-fleet" 0
    (Fleet.counter t "fleet.cover_flush")

let test_span_telemetry () =
  (* the per-span-kind duration quantiles live in the digested aggregate
     (so the determinism battery above covers them); here: every schema
     field is present, names a real span kind, and the kinds the fleet
     always exercises carry samples *)
  let t = ref_run Arrival.Poisson in
  let agg =
    match t.Fleet.doc with
    | J.Obj kvs -> (
      match List.assoc_opt "aggregate" kvs with
      | Some (J.Obj agg) -> agg
      | _ -> Alcotest.fail "no aggregate section")
    | _ -> Alcotest.fail "fleet doc is not an object"
  in
  let count f =
    match List.assoc_opt f agg with
    | Some (J.Obj q) -> (
      match List.assoc_opt "count" q with Some (J.Int c) -> c | _ -> -1)
    | _ -> Alcotest.failf "aggregate lacks span field %s" f
  in
  List.iter
    (fun (f, k) ->
      Alcotest.(check bool)
        (f ^ " names a real span kind")
        true
        (k >= 0 && k < Tk_stats.Span.nkinds);
      Alcotest.(check bool) (f ^ " quantiles present") true (count f >= 0))
    Fleet.span_fields;
  (* every wakeup executes code, resumes, and suspends again *)
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " carries samples") true (count f > 0))
    [ "span_run_ns"; "span_resume_ns"; "span_suspend_ns";
      "span_irq_deliver_ns" ]

let test_chaos_error_propagation () =
  (* a shard that dies must surface as (index, message) without taking
     the fleet down; healthy shards still complete *)
  let t =
    Fleet.run { (small Arrival.Poisson) with Fleet.chaos_fail = Some 2 }
  in
  Alcotest.(check bool) "fleet reports failure" true (Fleet.failed t);
  (match Fleet.first_error t with
  | Some (i, msg) ->
    Alcotest.(check int) "failing shard index" 2 i;
    Alcotest.(check bool) "carries the exception text" true
      (String.length msg > 0)
  | None -> Alcotest.fail "first_error empty on a failed fleet");
  (* 12 devices over 6 configs = 6 shards of 2; one shard was killed *)
  Alcotest.(check int) "surviving instances"
    (t.Fleet.config.Fleet.devices - 2)
    (Fleet.counter t "fleet.instances")

let () =
  Alcotest.run "fleet"
    [ ( "determinism",
        [ Alcotest.test_case "poisson: jobs=1 = jobs=8" `Quick
            (test_jobs_invariance Arrival.Poisson);
          Alcotest.test_case "bursty: jobs=1 = jobs=8" `Quick
            (test_jobs_invariance Arrival.Bursty);
          Alcotest.test_case "diurnal: jobs=1 = jobs=8" `Quick
            (test_jobs_invariance Arrival.Diurnal);
          Alcotest.test_case "instance order is unobservable" `Quick
            test_schedule_invariance;
          Alcotest.test_case "arrival kinds produce distinct work" `Quick
            test_arrival_kinds_distinct;
          Alcotest.test_case "seed moves the digest" `Quick
            test_seed_sensitivity ] );
      ( "fleet",
        [ Alcotest.test_case "population fully accounted" `Quick
            test_population_accounting;
          Alcotest.test_case "span quantiles ride the aggregate" `Quick
            test_span_telemetry;
          Alcotest.test_case "shard failure -> (index, message)" `Quick
            test_chaos_error_propagation ] ) ]
