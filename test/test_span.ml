(* Causal span tracer battery.

   Four groups:

   - vocabulary: every span kind round-trips through
     kind_name/kind_of_name (same totality discipline as the flight
     recorder's event vocabulary);
   - lifecycle: the phase-code dispatcher builds the documented causal
     tree from the very codes the guest and the runners emit — pinned
     against Tk_kernel.Hyper so the tracer's hardcoded codes can never
     drift from the hypercall ABI silently;
   - reconciliation: on a real offloaded run, every wakeup root's
     direct children sum to the root within 0.1%, in duration and in
     every attribution gauge (the ledger analogue of the energy bar);
   - exports: the span JSONL is one valid object per line and the
     Perfetto file is a single valid JSON document (checked with a
     strict recursive-descent validator, so a trailing comma or a bad
     escape fails here before it fails in ui.perfetto.dev). *)

open Tk_machine
open Tk_harness
module Span = Tk_stats.Span
module Hyper = Tk_kernel.Hyper

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --------------------------- vocabulary ------------------------------ *)

let test_kind_vocabulary () =
  for k = 0 to Span.nkinds - 1 do
    let n = Span.kind_name k in
    if n = "?" || n = "" then
      Alcotest.failf "span kind %d has no proper name (got %S)" k n;
    match Span.kind_of_name n with
    | Some k' -> check (Printf.sprintf "%S round-trips" n) k k'
    | None -> Alcotest.failf "span kind %d name %S does not parse back" k n
  done;
  checkb "out-of-range code has no name" true
    (Span.kind_name Span.nkinds = "?");
  checkb "unknown name rejected" true (Span.kind_of_name "not-a-kind" = None)

(* ---------------------------- lifecycle ------------------------------ *)

(* a tracer on a synthetic clock, driven by raw phase codes *)
let make_tracer () =
  let t = Span.create () in
  let now = ref 0 in
  t.Span.now <- (fun () -> !now);
  Span.enable t;
  (t, now)

let closed t =
  let out = ref [] in
  Span.iter t (fun ~id:_ ~parent ~kind ~core:_ ~t0 ~t1 ~arg ->
      out := (kind, parent, t0, t1, arg) :: !out);
  List.rev !out

let test_phase_lifecycle () =
  let t, now = make_tracer () in
  (* one suspend / sleep / wakeup cycle, using the Hyper constants the
     guest emits and the 900/901 sleep codes the runners record *)
  now := 100;
  Span.phase t Hyper.ph_suspend_begin;
  now := 300;
  Span.phase t Hyper.ph_suspend_end;
  Span.phase t 900;
  now := 800;
  Span.phase t 901;
  Span.phase t Hyper.ph_resume_begin;
  now := 1000;
  Span.phase t Hyper.ph_resume_end;
  let spans = closed t in
  check "four closed spans" 4 (List.length spans);
  let find k = List.find (fun (k', _, _, _, _) -> k' = k) spans in
  let _, _, t0, t1, _ = find Span.sk_suspend in
  check "suspend t0" 100 t0;
  check "suspend t1" 300 t1;
  let _, _, t0, t1, _ = find Span.sk_sleep in
  check "sleep t0" 300 t0;
  check "sleep t1" 800 t1;
  let _, wparent, t0, t1, _ = find Span.sk_wakeup in
  check "wakeup root opens at the sleep-end mark" 800 t0;
  check "wakeup root closes at resume end" 1000 t1;
  check "wakeup is a root" (-1) wparent;
  let _, rparent, t0, t1, _ = find Span.sk_resume in
  check "resume t0" 800 t0;
  check "resume t1" 1000 t1;
  checkb "resume is the wakeup's child" true (rparent >= 0);
  (* unpaired end marks must not unwind unrelated open spans (the
     boot-time resume-end case) *)
  let t2, _ = make_tracer () in
  Span.phase t2 Hyper.ph_resume_end;
  check "unpaired end mark is a no-op" 0 (List.length (closed t2))

let test_device_marks () =
  let t, now = make_tracer () in
  (* device 2's resume interval: dev_mark + dev*10 + (2 begin / 3 end) *)
  now := 750;
  Span.phase t (Hyper.ph_dev_mark + (2 * 10) + 2);
  now := 780;
  Span.phase t (Hyper.ph_dev_mark + (2 * 10) + 3);
  match closed t with
  | [ (kind, parent, t0, t1, arg) ] ->
    check "dev-phase kind" Span.sk_dev_phase kind;
    check "async spans have no parent" (-1) parent;
    check "interval start" 750 t0;
    check "interval end" 780 t1;
    check "arg encodes device and direction" ((2 * 2) + 1) arg
  | l -> Alcotest.failf "expected one dev-phase span, got %d" (List.length l)

let test_disabled_is_empty () =
  let ark = Ark_run.create () in
  let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
  ignore (Ark_run.suspend_resume_cycle ark);
  check "no spans recorded when disabled" 0 (Span.spans soc.Soc.spans);
  check "nothing dropped" 0 (Span.dropped soc.Soc.spans)

(* -------------------------- reconciliation --------------------------- *)

let traced_run ?(cycles = 2) ?(superblock = true) () =
  let ark = Ark_run.create ~superblock () in
  let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
  Span.enable soc.Soc.spans;
  for _ = 1 to cycles do
    ignore (Ark_run.suspend_resume_cycle ark)
  done;
  soc.Soc.spans

let test_reconciliation () =
  let sp = traced_run () in
  checkb "spans recorded" true (Span.spans sp > 0);
  check "no spans dropped" 0 (Span.dropped sp);
  let r = Span.reconcile sp in
  check "one wakeup root per cycle" 2 r.Span.r_roots;
  if r.Span.r_max_dur_residual > 0.001 then
    Alcotest.failf "duration residual %.5f%% exceeds the 0.1%% bar"
      (r.Span.r_max_dur_residual *. 100.);
  if r.Span.r_max_attr_residual > 0.001 then
    Alcotest.failf "attribution residual %.5f%% exceeds the 0.1%% bar"
      (r.Span.r_max_attr_residual *. 100.)

let count_kind sp k =
  let n = ref 0 in
  Span.iter sp (fun ~id:_ ~parent:_ ~kind ~core:_ ~t0:_ ~t1:_ ~arg:_ ->
      if kind = k then incr n);
  !n

let test_producer_coverage () =
  (* a cold offloaded superblock run must light up every producer *)
  let sp = traced_run () in
  List.iter
    (fun (label, k) ->
      if count_kind sp k = 0 then
        Alcotest.failf "no %s spans on a cold superblock run" label)
    [ ("run", Span.sk_run); ("irq-deliver", Span.sk_irq_deliver);
      ("dbt-translate", Span.sk_dbt_translate);
      ("dbt-form", Span.sk_dbt_form); ("power-ramp", Span.sk_power_ramp);
      ("dev-phase", Span.sk_dev_phase); ("suspend", Span.sk_suspend);
      ("sleep", Span.sk_sleep); ("resume", Span.sk_resume);
      ("wakeup", Span.sk_wakeup) ]

(* ------------------------------ exports ------------------------------ *)

(* strict recursive-descent JSON validator: accepts exactly one JSON
   value spanning the whole string. Catches the failure modes a
   hand-rolled serializer actually produces (trailing commas, missing
   commas, bad escapes, truncation). *)
let validate_json label s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "%s: invalid JSON at byte %d: %s" label !pos msg in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let adv () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\n' | '\t' | '\r') ->
      adv ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> adv ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let lit w =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then pos := !pos + l
    else fail ("expected " ^ w)
  in
  let str () =
    expect '"';
    let rec go () =
      match peek () with
      | Some '"' -> adv ()
      | Some '\\' -> (
        adv ();
        match peek () with
        | Some _ ->
          adv ();
          go ()
        | None -> fail "dangling escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some _ ->
        adv ();
        go ()
      | None -> fail "unterminated string"
    in
    go ()
  in
  let num () =
    let is_num = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    if not (match peek () with Some c -> is_num c | None -> false) then
      fail "expected number";
    while (match peek () with Some c -> is_num c | None -> false) do
      adv ()
    done
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> str ()
    | Some ('-' | '0' .. '9') -> num ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | _ -> fail "expected a value"
  and obj () =
    expect '{';
    skip_ws ();
    match peek () with
    | Some '}' -> adv ()
    | _ ->
      let rec members () =
        skip_ws ();
        str ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          adv ();
          members ()
        | Some '}' -> adv ()
        | _ -> fail "expected ',' or '}'"
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    match peek () with
    | Some ']' -> adv ()
    | _ ->
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          adv ();
          elems ()
        | Some ']' -> adv ()
        | _ -> fail "expected ',' or ']'"
      in
      elems ()
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let with_temp_dump dump f =
  let path = Filename.temp_file "tk_span" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      dump oc;
      close_out oc;
      f (read_file path))

let test_jsonl_valid () =
  let sp = traced_run ~cycles:1 () in
  with_temp_dump
    (fun oc -> Span.dump_jsonl oc sp)
    (fun s ->
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' s)
      in
      List.iteri
        (fun i l -> validate_json (Printf.sprintf "jsonl line %d" (i + 1)) l)
        lines;
      (* one line per closed span: every allocated span is closed once
         the cycle has fully unwound *)
      check "one line per span" (Span.spans sp) (List.length lines))

let test_perfetto_valid () =
  let ark = Ark_run.create ~superblock:true () in
  let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
  Span.enable soc.Soc.spans;
  Tk_stats.Timeseries.enable soc.Soc.sampler;
  ignore (Ark_run.suspend_resume_cycle ark);
  with_temp_dump
    (fun oc ->
      Span.dump_perfetto ~timeseries:soc.Soc.sampler oc soc.Soc.spans)
    (fun s ->
      validate_json "perfetto" s;
      (* must be the Chrome trace-event envelope with both span ("X")
         and counter ("C") events *)
      checkb "traceEvents envelope" true
        (String.length s > 20 && String.sub s 0 16 = {|{"traceEvents": |});
      let has sub =
        let sn = String.length sub and m = String.length s in
        let rec go i =
          i + sn <= m && (String.sub s i sn = sub || go (i + 1))
        in
        go 0
      in
      checkb "complete events present" true (has {|"ph": "X"|});
      checkb "counter events present" true (has {|"ph": "C"|});
      checkb "thread metadata present" true (has {|"thread_name"|}))

let () =
  Alcotest.run "span"
    [ ( "vocabulary",
        [ Alcotest.test_case "every kind round-trips by name" `Quick
            test_kind_vocabulary ] );
      ( "lifecycle",
        [ Alcotest.test_case "phase codes build the causal tree" `Quick
            test_phase_lifecycle;
          Alcotest.test_case "device marks become async spans" `Quick
            test_device_marks;
          Alcotest.test_case "disabled tracer records nothing" `Quick
            test_disabled_is_empty ] );
      ( "reconciliation",
        [ Alcotest.test_case "wakeup trees reconcile within 0.1%" `Quick
            test_reconciliation;
          Alcotest.test_case "every producer lights up" `Quick
            test_producer_coverage ] );
      ( "exports",
        [ Alcotest.test_case "span JSONL is valid per line" `Quick
            test_jsonl_valid;
          Alcotest.test_case "perfetto export is valid JSON" `Quick
            test_perfetto_valid ] ) ]
