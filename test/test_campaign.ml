(* Campaign runner: the determinism invariant and the pool mechanics.

   The load-bearing property is that a campaign's digest — computed over
   meta + per-task results + aggregate, everything except the host
   section — depends only on (kind, seed, tasks), never on --jobs. Tasks
   seed their own Random.State from (seed, index, kind tag) and share no
   mutable state, so scheduling them across 1 or 4 domains must be
   unobservable in the output. We pin that here for all three kinds;
   with a single-core CI host the 4-job runs just time-slice, which is
   exactly the point — the invariant is about scheduling freedom, not
   parallel hardware. *)

module Pool = Tk_campaign.Pool
module Campaign = Tk_campaign.Campaign
module J = Tk_harness.Run_manifest

(* ------------------------------- pool -------------------------------- *)

let test_pool_conservation () =
  (* every index runs exactly once, results land in task order *)
  let n = 57 in
  let hits = Array.make n 0 in
  let m = Mutex.create () in
  let out =
    Pool.run ~jobs:4 ~tasks:n (fun i ->
        Mutex.lock m;
        hits.(i) <- hits.(i) + 1;
        Mutex.unlock m;
        i * i)
  in
  Alcotest.(check int) "result per task" n (Array.length out);
  Array.iteri
    (fun i r ->
      Alcotest.(check int) (Printf.sprintf "task %d ran once" i) 1 hits.(i);
      match r with
      | Ok v -> Alcotest.(check int) "ordered slot" (i * i) v
      | Error e -> Alcotest.failf "task %d failed: %s" i e)
    out

let test_pool_crash_isolated () =
  (* a raising task becomes its own Error; the queue keeps draining *)
  let out =
    Pool.run ~jobs:3 ~tasks:10 (fun i ->
        if i = 4 then failwith "boom";
        if i = 7 then raise Exit;
        i)
  in
  Array.iteri
    (fun i r ->
      match (i, r) with
      | 4, Error e ->
        Alcotest.(check bool) "carries the exception text" true
          (String.length e > 0)
      | 7, Error _ -> ()
      | (4 | 7), Ok _ -> Alcotest.failf "task %d should have failed" i
      | _, Ok v -> Alcotest.(check int) "survivor" i v
      | _, Error e -> Alcotest.failf "task %d wedged: %s" i e)
    out

let test_pool_out_of_order_completion () =
  (* tasks finish in scrambled order (earlier indices spin longest);
     collection must still be by index *)
  let n = 12 in
  let out =
    Pool.run ~jobs:4 ~tasks:n (fun i ->
        (* busy-spin proportional to (n - i): task 0 finishes last *)
        let spin = ref 0 in
        for _ = 1 to (n - i) * 20_000 do
          incr spin
        done;
        ignore !spin;
        i)
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) i v
      | Error e -> Alcotest.failf "task %d failed: %s" i e)
    out

let test_pool_zero_tasks () =
  let out = Pool.run ~jobs:4 ~tasks:0 (fun i -> i) in
  Alcotest.(check int) "empty result" 0 (Array.length out)

(* --------------------------- determinism ----------------------------- *)

(* strip the host section: everything else must be byte-identical *)
let deterministic_part doc =
  match doc with
  | J.Obj fields ->
    J.to_string (J.Obj (List.filter (fun (k, _) -> k <> "host") fields))
  | _ -> Alcotest.fail "campaign doc is not an object"

let small_config kind =
  { (Campaign.default_config kind) with
    Campaign.tasks = 4;
    seed = 42;
    stress_runs = 3;
    stress_glitch_every = 2;
    fuzz_programs = 3 }

let test_jobs_invariance kind () =
  let t1 = Campaign.run { (small_config kind) with Campaign.jobs = 1 } in
  let t4 = Campaign.run { (small_config kind) with Campaign.jobs = 4 } in
  Alcotest.(check string)
    (Campaign.kind_name kind ^ ": digest is jobs-independent")
    t1.Campaign.digest t4.Campaign.digest;
  Alcotest.(check string)
    (Campaign.kind_name kind ^ ": whole doc identical modulo host")
    (deterministic_part t1.Campaign.doc)
    (deterministic_part t4.Campaign.doc)

let test_seed_sensitivity () =
  (* different seeds must actually change the work (guards against a
     digest that ignores its inputs) *)
  let t_a = Campaign.run (small_config Campaign.Whatif) in
  let t_b =
    Campaign.run { (small_config Campaign.Whatif) with Campaign.seed = 43 }
  in
  Alcotest.(check bool) "seed changes the digest" false
    (t_a.Campaign.digest = t_b.Campaign.digest)

let test_campaign_error_capture () =
  (* fuzz_programs = 0 is degenerate but must not wedge; and a campaign
     whose tasks all succeed reports no errors *)
  let t = Campaign.run (small_config Campaign.Stress) in
  Alcotest.(check int) "no task errors" 0 (List.length t.Campaign.errors);
  Alcotest.(check bool) "campaign is clean" false (Campaign.failed t)

let test_first_error_propagation () =
  (* regression for the CLI's non-zero exit path: a dead worker task
     must surface as (task index, exception text) via first_error, the
     way `arksim sweep`/`arksim fleet` report it — not as a generic
     "something failed" *)
  let t =
    Campaign.run
      { (small_config Campaign.Stress) with Campaign.chaos_fail = Some 2 }
  in
  Alcotest.(check bool) "campaign reports failure" true (Campaign.failed t);
  match Campaign.first_error t with
  | Some (i, msg) ->
    Alcotest.(check int) "failing task index" 2 i;
    Alcotest.(check bool) "message carries the exception text" true
      (String.length msg > 0
      && String.length msg >= 5
      &&
      (* Printexc renders Failure as 'Failure("...")' *)
      String.sub msg 0 7 = "Failure")
  | None -> Alcotest.fail "first_error empty on a failed campaign"

let () =
  Alcotest.run "campaign"
    [ ( "pool",
        [ Alcotest.test_case "task-count conservation, ordered results"
            `Quick test_pool_conservation;
          Alcotest.test_case "worker crash -> per-task error, queue drains"
            `Quick test_pool_crash_isolated;
          Alcotest.test_case "out-of-order completion, in-order collection"
            `Quick test_pool_out_of_order_completion;
          Alcotest.test_case "zero tasks" `Quick test_pool_zero_tasks ] );
      ( "determinism",
        [ Alcotest.test_case "stress: jobs=1 = jobs=4" `Quick
            (test_jobs_invariance Campaign.Stress);
          Alcotest.test_case "fuzz: jobs=1 = jobs=4" `Quick
            (test_jobs_invariance Campaign.Fuzz);
          Alcotest.test_case "whatif: jobs=1 = jobs=4" `Quick
            (test_jobs_invariance Campaign.Whatif);
          Alcotest.test_case "seed moves the digest" `Quick
            test_seed_sensitivity ] );
      ( "campaign",
        [ Alcotest.test_case "clean run reports no errors" `Quick
            test_campaign_error_capture;
          Alcotest.test_case "dead task -> first_error (index, message)"
            `Quick test_first_error_propagation ] ) ]
