(* World snapshots: fork/restore isolation and replay fidelity.

   The fleet runner's correctness rests on three properties pinned
   here. (1) Isolation: a snapshot is immutable — however the live
   world diverges after a fork, restoring the snapshot brings back the
   exact captured state, and doing so never perturbs any *other*
   snapshot. (2) Replay: running the same input trace from the same
   snapshot twice produces byte-identical simulated observables, and
   those match a straight run that never snapshotted at all — restore
   is not "close enough", it is the same world. (3) Mechanics: the
   dirty-page bitmap and the content-interning store do what their
   counters claim (touched-but-reverted pages cost nothing, identical
   captured pages share one buffer, shared ranges stay exempt). *)

open Tk_machine
open Tk_harness
module Fleet = Tk_fleet.Fleet
module Platform = Tk_drivers.Platform
module Counters = Tk_stats.Counters
module J = Run_manifest

(* minimal device mix: cycles cost ~6 ms, so the suite stays quick *)
let dc_minimal =
  Fleet.dconfigs.(Array.length Fleet.dconfigs - 1)

let mk () =
  let ark = Ark_run.create ~devices:dc_minimal.Fleet.dc_devices () in
  ignore (Fleet.warmup ark ~dc:dc_minimal);
  let soc = (Ark_run.plat ark).Platform.soc in
  let w =
    World.create
      ~shared_ranges:
        [ (Soc.code_cache_base, Soc.code_cache_base + Soc.code_cache_size) ]
      soc
  in
  Fleet.install_hooks w ark;
  (ark, w, soc)

let ram_digest (soc : Soc.t) =
  let mem = soc.Soc.mem in
  Mem.digest mem ~lo:mem.Mem.ram_base
    ~hi:(mem.Mem.ram_base + Bytes.length mem.Mem.ram)

(* every simulated observable a manifest would be built from: RAM,
   simulated time, kernel counters, cumulative sleep, phase events *)
let observables (ark : Ark_run.t) (soc : Soc.t) =
  let counters =
    List.sort compare
      (Counters.to_assoc ark.Ark_run.ark.Transkernel.Ark.counters)
  in
  J.to_string
    (J.Obj
       [ ("ram", J.Int (ram_digest soc));
         ("now", J.Int soc.Soc.clock.Clock.now);
         ( "counters",
           J.Obj (List.map (fun (k, v) -> (k, J.Int v)) counters) );
         ( "sleep_total",
           J.Int ark.Ark_run.nat.Native_run.sleep_ns_total );
         ("events", J.Int (List.length ark.Ark_run.events)) ])

let cycle_ms (ark : Ark_run.t) ms =
  ark.Ark_run.nat.Native_run.sleep_ns <- ms * 1_000_000;
  match Ark_run.suspend_resume_cycle ark with
  | `Ok -> ()
  | `Fell_back why -> Alcotest.failf "cycle fell back: %s" why

(* --------------------------- isolation ------------------------------- *)

let test_fork_isolation () =
  let ark, w, soc = mk () in
  let snap0 = World.fork w in
  let obs0 = observables ark soc in
  (* diverge: run a program the snapshot never saw *)
  cycle_ms ark 5;
  cycle_ms ark 9;
  let snap_b = World.fork w in
  let obs_b = observables ark soc in
  Alcotest.(check bool) "divergence changed the observables" false
    (obs0 = obs_b);
  World.restore w snap0;
  Alcotest.(check string) "restore(snap0) replays the fork-point state"
    obs0 (observables ark soc);
  (* run a *different* divergent program over snap0, then prove the
     sibling snapshot was untouched by all of it *)
  cycle_ms ark 3;
  World.restore w snap_b;
  Alcotest.(check string) "sibling snapshot unperturbed by divergent runs"
    obs_b (observables ark soc);
  World.restore w snap0;
  Alcotest.(check string) "snap0 still intact after restoring the sibling"
    obs0 (observables ark soc)

(* ----------------------------- replay -------------------------------- *)

let trace = [ 3; 5; 7 ]

let run_trace ark soc =
  List.iter (cycle_ms ark) trace;
  observables ark soc

let test_restore_replays_byte_identical () =
  let ark, w, soc = mk () in
  let snap0 = World.fork w in
  let first = run_trace ark soc in
  World.restore w snap0;
  let second = run_trace ark soc in
  Alcotest.(check string) "same trace from same snapshot, byte-identical"
    first second;
  (* a fresh world that never forked nor restored must land on the very
     same observables: snapshotting is invisible to the simulation *)
  let ark2 = Ark_run.create ~devices:dc_minimal.Fleet.dc_devices () in
  ignore (Fleet.warmup ark2 ~dc:dc_minimal);
  let soc2 = (Ark_run.plat ark2).Platform.soc in
  let straight = run_trace ark2 soc2 in
  Alcotest.(check string) "straight run matches snapshot replay" straight
    first

let test_pending_events_replayed () =
  (* one-shot clock events queued at fork time (device completions,
     ARK's conditional tick) are captured and come back on restore *)
  let ark, w, soc = mk () in
  cycle_ms ark 4;
  let snap = World.fork w in
  let pending = List.length (Clock.pending soc.Soc.clock) in
  cycle_ms ark 6;
  World.restore w snap;
  Alcotest.(check int) "queued one-shot events are back"
    pending
    (List.length (Clock.pending soc.Soc.clock));
  (* and the restored queue is live: the world keeps running *)
  cycle_ms ark 2

(* ---------------------------- mechanics ------------------------------ *)

let poke_addr = Soc.page_pool_base + 0x40
let page_of (soc : Soc.t) addr =
  (addr - soc.Soc.mem.Mem.ram_base) asr Mem.page_bits

let test_bitmap_false_dirty () =
  let _ark, w, soc = mk () in
  let mem = soc.Soc.mem in
  ignore (World.fork w);  (* clean the bitmap of warmup residue *)
  let f0 = (World.stats w).World.false_dirty in
  (* rewrite a byte with its own value: touched, but content = baseline *)
  Mem.ram_write mem poke_addr 1 (Mem.ram_read mem poke_addr 1);
  Alcotest.(check bool) "write marks the page touched" true
    (Mem.page_touched mem (page_of soc poke_addr));
  let snap = World.fork w in
  Alcotest.(check int) "reverted page detected as false-dirty" (f0 + 1)
    (World.stats w).World.false_dirty;
  Alcotest.(check bool) "and not captured" false
    (List.mem_assoc (page_of soc poke_addr) snap.World.s_pages);
  Alcotest.(check bool) "bitmap cleaned for the next fork" false
    (Mem.page_touched mem (page_of soc poke_addr))

let test_intern_shares_page_content () =
  let _ark, w, soc = mk () in
  let mem = soc.Soc.mem in
  ignore (World.fork w);
  let old = Mem.ram_read mem poke_addr 1 in
  Mem.ram_write mem poke_addr 1 ((old + 1) land 0xFF);
  let i0 = (World.stats w).World.pages_interned in
  let snap_a = World.fork w in
  (* dirty the page again, then put the same content back: the second
     capture must re-share the first capture's buffer, not copy it *)
  Mem.ram_write mem poke_addr 1 old;
  Mem.ram_write mem poke_addr 1 ((old + 1) land 0xFF);
  let snap_b = World.fork w in
  let page = page_of soc poke_addr in
  let buf_a = List.assoc page snap_a.World.s_pages
  and buf_b = List.assoc page snap_b.World.s_pages in
  Alcotest.(check bool) "identical content, one physical buffer" true
    (buf_a == buf_b);
  Alcotest.(check int) "interned exactly once" (i0 + 1)
    (World.stats w).World.pages_interned

let test_shared_range_exempt () =
  let _ark, w, soc = mk () in
  let mem = soc.Soc.mem in
  ignore (World.fork w);
  let addr = Soc.code_cache_base + 0x100 in
  let page = page_of soc addr in
  let v = (Mem.ram_read mem addr 1 + 1) land 0xFF in
  Mem.ram_write mem addr 1 v;
  let snap = World.fork w in
  Alcotest.(check bool) "shared page never captured" false
    (List.mem_assoc page snap.World.s_pages);
  World.restore w snap;
  Alcotest.(check int) "and never rewritten by restore" v
    (Mem.ram_read mem addr 1)

let test_restore_reverts_poke () =
  let _ark, w, soc = mk () in
  let mem = soc.Soc.mem in
  let snap0 = World.fork w in
  let old = Mem.ram_read mem poke_addr 1 in
  Mem.ram_write mem poke_addr 1 ((old + 1) land 0xFF);
  let snap1 = World.fork w in
  World.restore w snap0;
  Alcotest.(check int) "restore reverts the diverged byte" old
    (Mem.ram_read mem poke_addr 1);
  World.restore w snap1;
  Alcotest.(check int) "and the sibling still holds its version"
    ((old + 1) land 0xFF)
    (Mem.ram_read mem poke_addr 1)

let () =
  Alcotest.run "world"
    [ ( "isolation",
        [ Alcotest.test_case "divergent runs never leak across forks"
            `Quick test_fork_isolation;
          Alcotest.test_case "raw divergence reverts, sibling keeps its own"
            `Quick test_restore_reverts_poke ] );
      ( "replay",
        [ Alcotest.test_case "restore replays byte-identical observables"
            `Quick test_restore_replays_byte_identical;
          Alcotest.test_case "pending one-shot clock events survive"
            `Quick test_pending_events_replayed ] );
      ( "mechanics",
        [ Alcotest.test_case "touched-but-reverted pages are free" `Quick
            test_bitmap_false_dirty;
          Alcotest.test_case "identical pages intern to one buffer" `Quick
            test_intern_shares_page_content;
          Alcotest.test_case "shared ranges exempt from capture/restore"
            `Quick test_shared_range_exempt ] ) ]
