(* Differential execution battery: the §7.3 side-by-side methodology at
   fuzzing scale, driving the shared generator/runner library
   (Tk_harness.Fuzz_gen — the same code the parallel campaign runner's
   `sweep --kind fuzz` fans out across domains).

   Unlike the QCheck properties in test_dbt.ml (300 shrinkable cases
   per mode), this battery is a seeded-PRNG soak: > 1000 generated
   programs across four arms (the three translator modes plus the
   superblock trace tier), each reproducible from the single
   seed integer printed on failure — every random draw comes from an
   explicit Random.State made from that seed and threaded through the
   generators. TK_FUZZ_SCALE multiplies the volume for local deep
   soaks. *)

module Fuzz_gen = Tk_harness.Fuzz_gen
module Translator = Tk_dbt.Translator

let scale =
  match Sys.getenv_opt "TK_FUZZ_SCALE" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

(* ---------------------------- the soak ------------------------------- *)

let soak name mode compare gen base_seed want () =
  let compared = ref 0 and seed = ref base_seed in
  while !compared < want do
    incr seed;
    let st = Random.State.make [| !seed |] in
    let slots = gen st in
    if Fuzz_gen.translatable mode slots then begin
      (match compare slots with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "%s: divergence at seed %d:\n%s\nprogram:\n%s" name
          !seed msg
          (Fuzz_gen.program_str slots)
      | exception Fuzz_gen.Harness_error msg ->
        Alcotest.failf "%s: harness error at seed %d: %s\nprogram:\n%s" name
          !seed msg
          (Fuzz_gen.program_str slots));
      incr compared
    end
  done

let fuzz name mode gen base_seed want () =
  soak name mode (Fuzz_gen.compare_arms mode) gen base_seed want ()

(* the fourth arm: superblock tier on top of Ark mode — each program
   runs twice through one engine (cold = fusion, hot = formed traces),
   both passes diffed against the native oracle *)
let fuzz_superblock name gen base_seed want () =
  soak name Translator.Ark Fuzz_gen.compare_superblock gen base_seed want ()

let straight_n = 250 * scale
let branchy_n = 100 * scale

let mode_tests tag mode seed_base =
  [ Alcotest.test_case (tag ^ " straight-line = native") `Quick
      (fuzz (tag ^ "/straight") mode Fuzz_gen.gen_straight seed_base
         straight_n);
    Alcotest.test_case (tag ^ " branchy = native") `Quick
      (fuzz (tag ^ "/branchy") mode Fuzz_gen.gen_branchy
         (seed_base + 0x100000) branchy_n) ]

let superblock_tests seed_base =
  [ Alcotest.test_case "superblock straight-line = native" `Quick
      (fuzz_superblock "superblock/straight" Fuzz_gen.gen_straight seed_base
         straight_n);
    Alcotest.test_case "superblock branchy = native" `Quick
      (fuzz_superblock "superblock/branchy" Fuzz_gen.gen_branchy
         (seed_base + 0x100000) branchy_n) ]

(* generator determinism: the same state yields the same program — the
   property the campaign's cross-jobs digest equality rests on *)
let test_gen_deterministic () =
  List.iter
    (fun seed ->
      let p1 = Fuzz_gen.gen_branchy (Random.State.make [| seed; 77 |]) in
      let p2 = Fuzz_gen.gen_branchy (Random.State.make [| seed; 77 |]) in
      Alcotest.(check string)
        (Printf.sprintf "seed %d reproduces" seed)
        (Fuzz_gen.program_str p1)
        (Fuzz_gen.program_str p2);
      Alcotest.(check int) "digest agrees" (Fuzz_gen.program_fnv p1)
        (Fuzz_gen.program_fnv p2))
    [ 1; 42; 0x51AB ]

let () =
  Alcotest.run "differential"
    [ ("ark", mode_tests "ark" Translator.Ark 0x10000);
      ("mid", mode_tests "mid" Translator.Mid 0x20000);
      ("baseline", mode_tests "baseline" Translator.Baseline 0x30000);
      ("superblock", superblock_tests 0x40000);
      ( "generator",
        [ Alcotest.test_case "explicit-state generation reproduces" `Quick
            test_gen_deterministic ] ) ]
