(* ISA codec property battery: seeded-PRNG fuzz over both encoders.

   Two properties per ISA:

   - round-trip: for canonical-form instructions within each encoder's
     documented constraints, [decode (encode i) = i] structurally. The
     generators are constraint-aware (e.g. V7M modified immediates,
     LSL#0 register-shift canonicalization, writeback offset ranges) so
     every generated instruction must encode; an [Error] from the
     encoder is itself a test failure.

   - totality: [decode_total] never raises, for any 32-bit word —
     malformed words (bad cond nibble, unknown class/sub-op) become a
     defined [Udf] the executor can trap on. This is what lets the
     interpreters fetch from arbitrary guest memory without host-side
     exceptions leaking simulation state.

   Iteration counts scale with TK_FUZZ_SCALE (CI keeps it at 1; crank
   it locally for a deeper soak). Failures print the generator seed and
   iteration index, which reproduce the case exactly. *)

open Tk_isa
open Tk_isa.Types

let scale =
  match Sys.getenv_opt "TK_FUZZ_SCALE" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

let base_seed = 0x15a90

(* ------------------------ shared generators -------------------------- *)

let rnd = Random.State.int
let flip = Random.State.bool
let reg st = rnd st 16
let gcond st = cond_of_int (rnd st 15)
let msize st = mem_size_of_int (rnd st 3)
let skind st = shift_kind_of_int (rnd st 4)
let imm16 st = rnd st 0x10000

let word32 st = rnd st 0x10000 lor (rnd st 0x10000 lsl 16)

let idx3 st = match rnd st 3 with 0 -> Offset | 1 -> Pre | _ -> Post

(* branch offsets: word-aligned, signed 23-bit word offset *)
let branch_off st = (rnd st (1 lsl 23) - (1 lsl 22)) * 4

(* reg lists round-trip through a 16-bit mask: sorted, unique *)
let reglist st =
  let mask = rnd st 0x10000 in
  List.filter (fun r -> mask land (1 lsl r) <> 0) (List.init 16 Fun.id)

(* ------------------------------ V7A ---------------------------------- *)

(* any 8-bit value rotated right by an even amount is encodable *)
let imm_v7a st = Bits.ror32 (rnd st 256) (2 * rnd st 16)

let operand2_v7a st =
  match rnd st 4 with
  | 0 -> Imm (imm_v7a st)
  | 1 -> Reg (reg st)
  | 2 ->
    (* LSL #0 is canonicalized to a bare Reg by decode *)
    let k = skind st and a = rnd st 32 in
    if k = LSL && a = 0 then Reg (reg st) else Sreg (reg st, k, a)
  | _ -> Sregreg (reg st, skind st, reg st)

let misc_v7a st =
  match rnd st 16 with
  | 0 -> Mul (flip st, reg st, reg st, reg st)
  | 1 -> Mla (reg st, reg st, reg st, reg st)
  | 2 -> Udiv (reg st, reg st, reg st)
  | 3 -> Clz (reg st, reg st)
  | 4 -> Sxt (msize st, reg st, reg st)
  | 5 -> Uxt (msize st, reg st, reg st)
  | 6 -> Rev (reg st, reg st)
  | 7 -> Mrs (reg st)
  | 8 -> Msr (reg st)
  | 9 -> Svc (imm16 st)
  | 10 -> Wfi
  | 11 -> Cps (flip st)
  | 12 -> Irq_ret
  | 13 -> Swp (reg st, reg st, reg st)
  | 14 -> Nop
  | _ -> Udf (imm16 st)

let gen_v7a st : inst =
  let op =
    match rnd st 24 with
    | 0 | 1 | 2 | 3 | 4 | 5 ->
      Dp (dp_op_of_int (rnd st 16), flip st, reg st, reg st, operand2_v7a st)
    | 6 | 7 | 8 ->
      Mem
        { ld = flip st; size = msize st; rt = reg st; rn = reg st;
          idx = idx3 st; off = Oimm (rnd st 4095 - 2047) }
    | 9 | 10 ->
      Mem
        { ld = flip st; size = msize st; rt = reg st; rn = reg st;
          idx = idx3 st; off = Oreg (reg st, skind st, rnd st 32) }
    | 11 ->
      if flip st then Ldm (reg st, flip st, reglist st)
      else Stm (reg st, flip st, reglist st)
    | 12 -> B (branch_off st)
    | 13 -> Bl (branch_off st)
    | 14 -> if flip st then Bx (reg st) else Blx_r (reg st)
    | 15 -> Movw (reg st, imm16 st)
    | 16 -> Movt (reg st, imm16 st)
    | _ -> misc_v7a st
  in
  { cond = gcond st; op }

(* ------------------------------ V7M ---------------------------------- *)

(* the four Thumb-2 modified-immediate families *)
let imm_v7m st =
  match rnd st 5 with
  | 0 -> rnd st 256
  | 1 ->
    let b = 1 + rnd st 255 in
    b lor (b lsl 16)
  | 2 ->
    let b = 1 + rnd st 255 in
    (b lsl 8) lor (b lsl 24)
  | 3 ->
    let b = 1 + rnd st 255 in
    b lor (b lsl 8) lor (b lsl 16) lor (b lsl 24)
  | _ -> Bits.ror32 (0x80 lor rnd st 128) (8 + rnd st 24)

(* RSC has no V7M encoding *)
let rec dp_op_v7m st =
  let o = dp_op_of_int (rnd st 16) in
  if o = RSC then dp_op_v7m st else o

let dp_v7m st =
  match rnd st 6 with
  | 0 | 1 -> Dp (dp_op_v7m st, flip st, reg st, reg st, Imm (imm_v7m st))
  | 2 -> Dp (dp_op_v7m st, flip st, reg st, reg st, Reg (reg st))
  | 3 | 4 ->
    let k = skind st and a = rnd st 32 in
    let op2 =
      if k = LSL && a = 0 then Reg (reg st) else Sreg (reg st, k, a)
    in
    Dp (dp_op_v7m st, flip st, reg st, reg st, op2)
  | _ ->
    (* register-shift appears only as a bare move *)
    Dp (MOV, flip st, reg st, reg st, Sregreg (reg st, skind st, reg st))

let misc_v7m st =
  match rnd st 14 with
  | 0 -> Mul (flip st, reg st, reg st, reg st)
  | 1 -> Mla (reg st, reg st, reg st, reg st)
  | 2 -> Udiv (reg st, reg st, reg st)
  | 3 -> Clz (reg st, reg st)
  | 4 -> Sxt (msize st, reg st, reg st)
  | 5 -> Uxt (msize st, reg st, reg st)
  | 6 -> Rev (reg st, reg st)
  | 7 -> Mrs (reg st)
  | 8 -> Msr (reg st)
  | 9 -> Svc (imm16 st)
  | 10 -> Wfi
  | 11 -> Cps (flip st)
  | 12 -> Nop
  | _ -> Udf (imm16 st)

let gen_v7m st : inst =
  let op =
    match rnd st 24 with
    | 0 | 1 | 2 | 3 | 4 | 5 -> dp_v7m st
    | 6 | 7 | 8 ->
      (* immediate offsets: [-255, 4095] plain, |o| <= 255 writeback *)
      let idx = idx3 st in
      let o =
        match idx with
        | Offset -> rnd st (4095 + 256) - 255
        | Pre | Post -> rnd st 511 - 255
      in
      Mem
        { ld = flip st; size = msize st; rt = reg st; rn = reg st; idx;
          off = Oimm o }
    | 9 | 10 ->
      (* register offsets: no writeback, LSL #0..3 only *)
      Mem
        { ld = flip st; size = msize st; rt = reg st; rn = reg st;
          idx = Offset; off = Oreg (reg st, LSL, rnd st 4) }
    | 11 ->
      if flip st then Ldm (reg st, flip st, reglist st)
      else Stm (reg st, flip st, reglist st)
    | 12 -> B (branch_off st)
    | 13 -> Bl (branch_off st)
    | 14 -> if flip st then Bx (reg st) else Blx_r (reg st)
    | 15 -> Movw (reg st, imm16 st)
    | 16 -> Movt (reg st, imm16 st)
    | _ -> misc_v7m st
  in
  { cond = gcond st; op }

(* ---------------------------- properties ----------------------------- *)

let roundtrip name encode decode decode_total gen iters () =
  let st = Random.State.make [| base_seed |] in
  for i = 1 to iters do
    let inst = gen st in
    match encode inst with
    | Error e ->
      Alcotest.failf "%s round-trip #%d (seed 0x%x): unencodable %s (%s)"
        name i base_seed (to_string inst) e
    | Ok w ->
      let inst' = decode w in
      if inst' <> inst then
        Alcotest.failf "%s round-trip #%d (seed 0x%x): %s -> 0x%08x -> %s"
          name i base_seed (to_string inst) w (to_string inst');
      if decode_total w <> inst then
        Alcotest.failf
          "%s round-trip #%d (seed 0x%x): decode_total disagrees with \
           decode on 0x%08x"
          name i base_seed w
  done

let totality name decode_total iters () =
  let st = Random.State.make [| base_seed + 7 |] in
  for i = 1 to iters do
    let w = word32 st in
    match decode_total w with
    | (_ : inst) -> ()
    | exception e ->
      Alcotest.failf "%s decode_total #%d (seed 0x%x) raised on 0x%08x: %s"
        name i (base_seed + 7) w (Printexc.to_string e)
  done

(* hand-picked malformed words: decode raises, decode_total yields Udf *)
let total_edges () =
  let check name decode decode_total w =
    (match decode w with
    | i ->
      Alcotest.failf "%s: expected decode to reject 0x%08x, got %s" name w
        (to_string i)
    | exception _ -> ());
    match decode_total w with
    | { op = Udf _; _ } -> ()
    | i ->
      Alcotest.failf "%s: expected Udf from decode_total 0x%08x, got %s" name
        w (to_string i)
  in
  (* cond nibble 15 is reserved in both ISAs *)
  check "v7a" V7a.decode V7a.decode_total 0xF0000000;
  check "v7m" V7m.decode V7m.decode_total 0xF0000000;
  (* V7A class 6 sub-ops 16..31 are unallocated *)
  check "v7a" V7a.decode V7a.decode_total ((6 lsl 25) lor (17 lsl 20));
  (* V7M class 3 has no sub-ops 12 (SWP) or 13 *)
  check "v7m" V7m.decode V7m.decode_total ((3 lsl 25) lor (12 lsl 20));
  check "v7m" V7m.decode V7m.decode_total ((3 lsl 25) lor (13 lsl 20))

let n = 10_000 * scale

let () =
  Alcotest.run "isa-prop"
    [ ( "round-trip",
        [ Alcotest.test_case "v7a decode (encode i) = i" `Quick
            (roundtrip "v7a" V7a.encode V7a.decode V7a.decode_total gen_v7a n);
          Alcotest.test_case "v7m decode (encode i) = i" `Quick
            (roundtrip "v7m" V7m.encode V7m.decode V7m.decode_total gen_v7m n)
        ] );
      ( "totality",
        [ Alcotest.test_case "v7a decode_total never raises" `Quick
            (totality "v7a" V7a.decode_total n);
          Alcotest.test_case "v7m decode_total never raises" `Quick
            (totality "v7m" V7m.decode_total n);
          Alcotest.test_case "malformed words become Udf" `Quick total_edges
        ] ) ]
