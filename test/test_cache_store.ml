(* The persistent translation cache: serialization round-trip, key
   hygiene (a digest mismatch or corrupt file is an ordinary cold
   start), and the warm-start contract — a warm run replays cached
   blocks and traces at exactly the instants cold translation would
   produce them, with the same simulated charges, so every simulated
   counter is identical to the cold run's. Only host-side translation
   work is skipped. *)

open Tk_isa
open Tk_isa.Types
open Tk_machine
open Tk_dbt
module Ark_run = Tk_harness.Ark_run
module Native_run = Tk_harness.Native_run

let rep n i = List.init n (fun _ -> Asm.Ins i)

(* the same two-block hot loop shape the superblock suite uses *)
let hot_image () =
  let items =
    [ Asm.Ins (at (Movw (0, 0))); Asm.Ins (at (Movw (1, 200)));
      Asm.Label ".top" ]
    @ rep 18 (at (Dp (ADD, false, 0, 0, Imm 1)))
    @ [ Asm.Ins (at (Dp (SUB, false, 1, 1, Imm 1)));
        Asm.Ins (at (Dp (CMP, true, 0, 1, Imm 0)));
        Asm.Bcc (NE, ".top");
        Asm.Ins (at (Bx Types.lr)) ]
  in
  Asm.link ~base:Soc.kernel_base [ { Asm.name = "hotfn"; items } ] []

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tkcache-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o755;
  d

let rm_rf d =
  if Sys.file_exists d then begin
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    Unix.rmdir d
  end

(* one superblock-tier run of the hot loop; [store] attaches a
   persistent cache *)
let run_hot ?store image =
  let soc = Soc.create () in
  Mem.load_image soc.Soc.mem image;
  let engine = Engine.create ~soc ~mode:Translator.Ark () in
  engine.Engine.superblock <- true;
  engine.Engine.sb_threshold <- 4;
  engine.Engine.store <- store;
  let cpu = Exec.make_cpu () in
  cpu.Exec.r.(Types.lr) <- Layout.exit_magic;
  cpu.Exec.r.(Types.pc) <-
    Engine.entry_host engine (Asm.symbol image "hotfn");
  (try Engine.run engine cpu ~fuel:5_000_000 with
  | Engine.Context_exit -> ()
  | e -> Alcotest.failf "engine: %s" (Printexc.to_string e));
  let act = Core.activity soc.Soc.m3 in
  let regs = Array.init 16 (fun i -> Engine.guest_reg engine cpu i) in
  (regs, Exec.flags_word cpu, act, engine)

(* ------------------------------ tests -------------------------------- *)

let test_roundtrip () =
  let image = hot_image () in
  let key =
    Cache_store.key_of_image ~base:image.Asm.base ~words:image.Asm.words
  in
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let _, _, _, engine = run_hot ~store:(Cache_store.create ~key) image in
      let st = Option.get engine.Engine.store in
      Alcotest.(check bool) "cold run populated the store" true
        (Hashtbl.length st.Cache_store.blocks > 0
        && Hashtbl.length st.Cache_store.traces > 0);
      Cache_store.save ~dir st;
      match Cache_store.load ~dir ~key with
      | None -> Alcotest.fail "saved cache failed to load"
      | Some got ->
        Alcotest.(check string) "key survives" key got.Cache_store.key;
        Alcotest.(check int) "all blocks survive"
          (Hashtbl.length st.Cache_store.blocks)
          (Hashtbl.length got.Cache_store.blocks);
        Alcotest.(check int) "all traces survive"
          (Hashtbl.length st.Cache_store.traces)
          (Hashtbl.length got.Cache_store.traces))

let test_key_mismatch_cold () =
  let image = hot_image () in
  let key =
    Cache_store.key_of_image ~base:image.Asm.base ~words:image.Asm.words
  in
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let _, _, _, engine = run_hot ~store:(Cache_store.create ~key) image in
      Cache_store.save ~dir (Option.get engine.Engine.store);
      (* absent key: no such file *)
      Alcotest.(check bool) "unknown key misses" true
        (Cache_store.load ~dir ~key:"00000000" = None);
      (* stale key: pretend the image changed but the file name matched *)
      Sys.rename
        (Cache_store.path ~dir ~key)
        (Cache_store.path ~dir ~key:"deadbeef");
      Alcotest.(check bool) "digest-mismatched file rejected" true
        (Cache_store.load ~dir ~key:"deadbeef" = None))

let test_corrupt_cold () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let path = Cache_store.path ~dir ~key:"cafe1234" in
      let oc = open_out_bin path in
      output_string oc "not a translation cache at all";
      close_out oc;
      Alcotest.(check bool) "corrupt file is a cold start" true
        (Cache_store.load ~dir ~key:"cafe1234" = None))

(* the fixed-tmp race fix: concurrent writers sharing one cache dir use
   unique per-process tmp names, so one save can never rename another's
   half-written file into place; after both commit, the dir holds only
   final cache files (every tmp unlinked) and each loads intact *)
let test_concurrent_saves () =
  let image = hot_image () in
  let key =
    Cache_store.key_of_image ~base:image.Asm.base ~words:image.Asm.words
  in
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let _, _, _, e1 = run_hot ~store:(Cache_store.create ~key) image in
      let _, _, _, e2 = run_hot ~store:(Cache_store.create ~key) image in
      let s1 = Option.get e1.Engine.store
      and s2 = Option.get e2.Engine.store in
      (* interleave the two saves on domains: same target file, distinct
         tmp files, last rename wins *)
      let d1 = Domain.spawn (fun () -> Cache_store.save ~dir s1) in
      Cache_store.save ~dir s2;
      Domain.join d1;
      Array.iter
        (fun f ->
          Alcotest.(check bool)
            (Printf.sprintf "no tmp residue (%s)" f)
            false
            (Filename.check_suffix f ".tmp"))
        (Sys.readdir dir);
      match Cache_store.load ~dir ~key with
      | None -> Alcotest.fail "winner's file failed to load"
      | Some got ->
        Alcotest.(check int) "winner's blocks intact"
          (Hashtbl.length s1.Cache_store.blocks)
          (Hashtbl.length got.Cache_store.blocks))

(* an unwritable cache dir degrades to a warning: the run stays cold
   instead of crashing (fleet shards must survive a read-only mount).
   chmod is no barrier to root, so unwritability is staged with a
   regular file where the directory should be — mkdir and temp_file
   both fail with Sys_error on it, for any uid *)
let test_unwritable_dir_runs_cold () =
  let image = hot_image () in
  let key =
    Cache_store.key_of_image ~base:image.Asm.base ~words:image.Asm.words
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tkcache-notadir-%d-%d" (Unix.getpid ())
         (Random.bits ()))
  in
  let oc = open_out dir in
  close_out oc;
  Fun.protect
    ~finally:(fun () -> Sys.remove dir)
    (fun () ->
      let _, _, _, engine = run_hot ~store:(Cache_store.create ~key) image in
      (* must not raise; nothing persisted *)
      Cache_store.save ~dir (Option.get engine.Engine.store);
      Alcotest.(check bool) "nothing persisted, next start is cold" true
        (Cache_store.load ~dir ~key = None))

(* warm replay must not move a single simulated counter: the cache
   eliminates host-side translation work, never simulated cycles *)
let test_warm_equals_cold () =
  let image = hot_image () in
  let key =
    Cache_store.key_of_image ~base:image.Asm.base ~words:image.Asm.words
  in
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let regs_c, flags_c, act_c, engine_c =
        run_hot ~store:(Cache_store.create ~key) image
      in
      Cache_store.save ~dir (Option.get engine_c.Engine.store);
      let warm = Option.get (Cache_store.load ~dir ~key) in
      let regs_w, flags_w, act_w, engine_w = run_hot ~store:warm image in
      Alcotest.(check bool) "warm run replayed from the store" true
        (engine_w.Engine.cache_warm_hits > 0);
      Alcotest.(check int) "cold run had no warm hits" 0
        engine_c.Engine.cache_warm_hits;
      Alcotest.(check (array int)) "guest registers identical" regs_c regs_w;
      Alcotest.(check int) "flags identical" flags_c flags_w;
      Alcotest.(check int) "instructions identical"
        act_c.Core.a_instructions act_w.Core.a_instructions;
      Alcotest.(check int) "busy cycles identical" act_c.Core.a_busy_cycles
        act_w.Core.a_busy_cycles;
      Alcotest.(check int) "cache misses identical"
        act_c.Core.a_cache_misses act_w.Core.a_cache_misses;
      Alcotest.(check int) "traces re-formed at the same instants"
        engine_c.Engine.traces_formed engine_w.Engine.traces_formed;
      Alcotest.(check int) "fusions identical" engine_c.Engine.fusions_applied
        engine_w.Engine.fusions_applied)

(* the harness plumbing: a full offloaded cycle cold with --cache-dir,
   then warm — byte-identical simulated outcome, warm hits observed *)
let test_harness_warm_cycle () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cycle () =
        let ark = Ark_run.create ~superblock:true ~cache_dir:dir () in
        (match Ark_run.suspend_resume_cycle ark with
        | `Ok -> ()
        | `Fell_back r -> Alcotest.failf "unexpected fallback: %s" r);
        Ark_run.save_cache ark;
        let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
        let act = Core.activity soc.Soc.m3 in
        let e = ark.Ark_run.ark.Transkernel.Ark.engine in
        ( act.Core.a_instructions, act.Core.a_busy_cycles,
          act.Core.a_cache_misses, soc.Soc.clock.Clock.now,
          e.Engine.cache_warm_hits )
      in
      let ic, bc, mc, tc, warm_c = cycle () in
      let iw, bw, mw, tw, warm_w = cycle () in
      Alcotest.(check int) "cold cycle starts cold" 0 warm_c;
      Alcotest.(check bool) "second cycle warm-started" true (warm_w > 0);
      Alcotest.(check int) "instructions identical" ic iw;
      Alcotest.(check int) "busy cycles identical" bc bw;
      Alcotest.(check int) "cache misses identical" mc mw;
      Alcotest.(check int) "simulated time identical" tc tw)

let () =
  Random.self_init ();
  Alcotest.run "cache_store"
    [ ( "persistence",
        [ Alcotest.test_case "save/load round-trip" `Quick test_roundtrip;
          Alcotest.test_case "digest mismatch is a cold start" `Quick
            test_key_mismatch_cold;
          Alcotest.test_case "corrupt file is a cold start" `Quick
            test_corrupt_cold;
          Alcotest.test_case "concurrent saves never clobber" `Quick
            test_concurrent_saves;
          Alcotest.test_case "unwritable dir degrades to cold" `Quick
            test_unwritable_dir_runs_cold ] );
      ( "warm start",
        [ Alcotest.test_case "warm counters = cold counters" `Quick
            test_warm_equals_cold;
          Alcotest.test_case "full cycle warm = cold" `Quick
            test_harness_warm_cycle ] ) ]
