(* Bounded-quantum lockstep battery.

   The contract under test (DESIGN.md §11): slicing offloaded phases
   into quanta — any quanta — must not move a single simulated
   observable. At --quantum 1 the whole run is byte-identical to the
   sequential scheduler; at any larger quantum the final architectural
   state still matches; and the concurrent two-core mode is a pure
   function of the configuration — the deterministic interleave and the
   one-domain-per-core driver produce identical results.

   Plus unit coverage of the Lockstep driver itself on synthetic lanes:
   barrier commits run in (time, lane, arrival) order, observed skew is
   bounded by the quantum plus one indivisible tail, a true deadlock is
   detected (and a clean simultaneous finish is not), and merge_lane
   restores the single-clock regime preserving global event order. *)

open Tk_machine
module Translator = Tk_dbt.Translator
module Ark_run = Tk_harness.Ark_run
module Ark = Transkernel.Ark
module Counters = Tk_stats.Counters

(* ----------------------- observable snapshot ------------------------- *)

(* everything the digests are built from: per-core activity, DRAM
   traffic, simulated time, ARK's own counters and phase-event times *)
type snap = {
  s_cpu_cycles : int;
  s_m3_cycles : int;
  s_m3_idle : int;
  s_instrs : int;
  s_hits : int;
  s_misses : int;
  s_rd_bytes : int;
  s_wr_bytes : int;
  s_now : int;
  s_counters : (string * int) list;
  s_events : (int * int) list;  (** (code, time) per phase event *)
}

let snap_of (ark : Ark_run.t) =
  let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
  let m3 = soc.Soc.m3 in
  { s_cpu_cycles = soc.Soc.cpu.Core.busy_cycles;
    s_m3_cycles = m3.Core.busy_cycles;
    s_m3_idle = m3.Core.idle_ps;
    s_instrs = m3.Core.instructions;
    s_hits = m3.Core.cache.Cache.hits;
    s_misses = m3.Core.cache.Cache.misses;
    s_rd_bytes = m3.Core.cache.Cache.rd_bytes;
    s_wr_bytes = m3.Core.cache.Cache.wr_bytes;
    s_now = soc.Soc.clock.Clock.now;
    s_counters = Counters.snapshot ark.Ark_run.ark.Ark.counters;
    s_events =
      List.map
        (fun (e : Ark_run.phase_event) -> (e.ev_code, e.ev_time_ns))
        ark.Ark_run.events }

let pp_snap s =
  Printf.sprintf
    "cpu=%d m3=%d idle=%d instrs=%d hits=%d misses=%d rd=%d wr=%d now=%d \
     counters=%d events=%d"
    s.s_cpu_cycles s.s_m3_cycles s.s_m3_idle s.s_instrs s.s_hits s.s_misses
    s.s_rd_bytes s.s_wr_bytes s.s_now
    (List.length s.s_counters) (List.length s.s_events)

let check_snap label a b =
  if a <> b then
    Alcotest.failf "%s: sliced observables drifted\n  seq:    %s\n  sliced: %s"
      label (pp_snap a) (pp_snap b)

let run_cycles ?(superblock = false) ?mode ~quantum ~cycles () =
  let ark =
    match mode with
    | Some m -> Ark_run.create ~mode:m ~quantum ()
    | None -> Ark_run.create ~superblock ~quantum ()
  in
  for _ = 1 to cycles do
    match Ark_run.suspend_resume_cycle ark with
    | `Ok -> ()
    | `Fell_back r -> Alcotest.failf "unexpected fallback: %s" r
  done;
  (snap_of ark, ark)

(* --------------------- quantum=1 byte-identity ----------------------- *)

let tiers =
  [ ("ark", `Mode Translator.Ark); ("mid", `Mode Translator.Mid);
    ("baseline", `Mode Translator.Baseline); ("superblock", `Superblock) ]

let test_q1_identity (label, tier) () =
  let run quantum =
    match tier with
    | `Mode m -> fst (run_cycles ~mode:m ~quantum ~cycles:2 ())
    | `Superblock -> fst (run_cycles ~superblock:true ~quantum ~cycles:2 ())
  in
  check_snap (label ^ ": quantum=1 = sequential") (run 0) (run 1)

(* --------------------- quantum-sweep invariance ---------------------- *)

(* any quantum (not just 1) leaves the final architectural state — and
   every intermediate phase-event instant — exactly where the
   sequential scheduler puts it *)
let test_quantum_sweep () =
  let base = fst (run_cycles ~mode:Translator.Ark ~quantum:0 ~cycles:2 ()) in
  List.iter
    (fun q ->
      let got = fst (run_cycles ~mode:Translator.Ark ~quantum:q ~cycles:2 ()) in
      check_snap (Printf.sprintf "quantum=%d" q) base got)
    [ 1; 137; 1_000; 20_000; 10_000_000 ]

(* the lockstep round counter actually sliced the run (the identity is
   not vacuous), and finer quanta mean more rounds *)
let test_slicing_not_vacuous () =
  let _, a1 = run_cycles ~mode:Translator.Ark ~quantum:1_000 ~cycles:1 () in
  let _, a2 = run_cycles ~mode:Translator.Ark ~quantum:100_000 ~cycles:1 () in
  Alcotest.(check bool) "coarse quantum still slices" true
    (a2.Ark_run.ls_rounds > 0);
  Alcotest.(check bool) "finer quantum = more rounds" true
    (a1.Ark_run.ls_rounds > a2.Ark_run.ls_rounds)

(* ---------------------- concurrent two-core mode --------------------- *)

let run_concurrent ~domains =
  let ark = Ark_run.create ~quantum:20_000 () in
  for _ = 1 to 2 do
    match Ark_run.concurrent_cycle ~domains ark with
    | `Ok -> ()
    | `Fell_back r -> Alcotest.failf "unexpected fallback: %s" r
  done;
  (snap_of ark, ark)

let test_concurrent_interleave_eq_domains () =
  let a, _ = run_concurrent ~domains:false in
  let b, _ = run_concurrent ~domains:true in
  check_snap "interleave = domains" a b

let test_concurrent_did_overlap () =
  (* the A9 workload really rode along: its busy cycles grew past the
     solo-sliced run's, and the skew the barrier observed is bounded by
     the quantum plus one indivisible charge tail *)
  let solo, _ = run_cycles ~quantum:20_000 ~cycles:2 () in
  let conc, ark = run_concurrent ~domains:false in
  Alcotest.(check bool) "A9 executed workload concurrently" true
    (conc.s_cpu_cycles > solo.s_cpu_cycles);
  Alcotest.(check bool) "rounds driven" true (ark.Ark_run.ls_rounds > 0);
  Alcotest.(check bool)
    (Printf.sprintf "skew %d bounded by quantum + tail"
       ark.Ark_run.ls_max_skew_ns)
    true
    (ark.Ark_run.ls_max_skew_ns <= 20_000 + 10_000)

(* ------------------------ synthetic lane units ----------------------- *)

(* a scripted lane: per the lane contract it advances its clock in
   [step]-ns increments up to each round's deadline, until [total] ns
   of work are consumed; [on_step] observes every increment *)
let scripted clock name ~step ~total ?(on_step = fun _ -> ()) () =
  let spent = ref 0 in
  { Lockstep.l_name = name; l_clock = clock;
    l_run =
      (fun ~deadline ->
        while !spent < total && clock.Clock.now < deadline do
          let d = min step (total - !spent) in
          clock.Clock.now <- min deadline (clock.Clock.now + d);
          spent := !spent + d;
          on_step !spent
        done;
        if !spent >= total then `Done else `Runnable) }

let test_commit_order () =
  let main = Clock.create () in
  let lane = Clock.lane main in
  let log = ref [] in
  let ls = ref None in
  let post_from l tag =
    Lockstep.post (Option.get !ls) ~lane:l (fun () -> log := tag :: !log)
  in
  let a =
    scripted main "a" ~step:10 ~total:30
      ~on_step:(fun spent -> if spent = 10 then post_from 0 "a@10")
      ()
  in
  let b =
    scripted lane "b" ~step:10 ~total:30
      ~on_step:(fun spent ->
        if spent = 10 then begin
          (* same instant as a@10: lane order (0 before 1) breaks the
             tie; two posts from one lane keep arrival order *)
          post_from 1 "b@10.first";
          post_from 1 "b@10.second"
        end
        else if spent = 20 then post_from 1 "b@20")
      ()
  in
  let t = Lockstep.create ~quantum:100 [ a; b ] in
  ls := Some t;
  let st = Lockstep.run t in
  Alcotest.(check (list string))
    "commits ran in (time, lane, arrival) order"
    [ "a@10"; "b@10.first"; "b@10.second"; "b@20" ]
    (List.rev !log);
  Alcotest.(check int) "all commits counted" 4 st.Lockstep.commits

let test_skew_bounded () =
  let main = Clock.create () in
  let lane = Clock.lane main in
  (* lane b overshoots each boundary by an indivisible 7-ns tail *)
  let a = scripted main "a" ~step:25 ~total:1_000 () in
  let b =
    { Lockstep.l_name = "b"; l_clock = lane;
      l_run =
        (fun ~deadline ->
          if lane.Clock.now >= 1_000 then `Done
          else begin
            lane.Clock.now <- deadline + 7;
            `Runnable
          end) }
  in
  let t = Lockstep.create ~quantum:50 [ a; b ] in
  let st = Lockstep.run t in
  Alcotest.(check bool)
    (Printf.sprintf "skew %d <= quantum + tail" st.Lockstep.max_skew_ns)
    true
    (st.Lockstep.max_skew_ns <= 50 + 7)

let test_deadlock_detected () =
  let main = Clock.create () in
  let lane = Clock.lane main in
  let a = scripted main "a" ~step:10 ~total:20 () in
  let b =
    { Lockstep.l_name = "b"; l_clock = lane;
      l_run = (fun ~deadline:_ -> `Blocked) }
  in
  let t = Lockstep.create ~quantum:50 [ a; b ] in
  Alcotest.check_raises "blocked lane with no events deadlocks"
    (Lockstep.Deadlock
       "lockstep deadlock: all lanes blocked with no events or commits \
        pending (a: done at 20 ns (next event none); b: blocked at 50 ns \
        (next event none))")
    (fun () -> ignore (Lockstep.run t))

let test_clean_finish_is_not_deadlock () =
  (* both lanes going `Done in the same round must terminate cleanly *)
  let main = Clock.create () in
  let lane = Clock.lane main in
  let a = scripted main "a" ~step:10 ~total:10 () in
  let b = scripted lane "b" ~step:10 ~total:10 () in
  let t = Lockstep.create ~quantum:1_000 [ a; b ] in
  let st = Lockstep.run t in
  Alcotest.(check int) "one round" 1 st.Lockstep.rounds

let test_blocked_lane_wakes_on_commit () =
  let main = Clock.create () in
  let lane = Clock.lane main in
  let woken = ref false in
  let ls = ref None in
  let a =
    scripted main "a" ~step:10 ~total:30
      ~on_step:(fun spent ->
        if spent = 10 then
          Lockstep.post (Option.get !ls) ~lane:0 (fun () ->
              (* the cross-lane wakeup: arm an event on the blocked
                 lane; the driver re-polls it after the barrier *)
              Clock.after_ lane 5 (fun () -> woken := true)))
      ()
  in
  let b =
    { Lockstep.l_name = "b"; l_clock = lane;
      l_run = (fun ~deadline:_ -> if !woken then `Done else `Blocked) }
  in
  let t = Lockstep.create ~quantum:50 [ a; b ] in
  ls := Some t;
  ignore (Lockstep.run t);
  Alcotest.(check bool) "commit woke the blocked lane" true !woken

let test_interleave_eq_domains_synthetic () =
  let run domains =
    let main = Clock.create () in
    let lane = Clock.lane main in
    let trail = ref [] in
    let ls = ref None in
    let a =
      scripted main "a" ~step:13 ~total:400
        ~on_step:(fun spent ->
          if spent mod 39 = 0 then
            Lockstep.post (Option.get !ls) ~lane:0 (fun () ->
                trail := ("a", spent) :: !trail))
        ()
    in
    let b =
      scripted lane "b" ~step:29 ~total:700
        ~on_step:(fun spent ->
          if spent mod 58 = 0 then
            Lockstep.post (Option.get !ls) ~lane:1 (fun () ->
                trail := ("b", spent) :: !trail))
        ()
    in
    let t = Lockstep.create ~quantum:64 [ a; b ] in
    ls := Some t;
    let st = Lockstep.run ~domains t in
    (List.rev !trail, st.Lockstep.rounds, st.Lockstep.commits)
  in
  Alcotest.(check bool) "domains = interleave on synthetic lanes" true
    (run false = run true)

let test_merge_lane_preserves_order () =
  let main = Clock.create () in
  let lane = Clock.lane main in
  let log = ref [] in
  (* interleaved arming across the two queues: the shared seq allocator
     defines the global order the merged queue must replay *)
  Clock.after_ main 100 (fun () -> log := "m100" :: !log);
  Clock.after_ lane 50 (fun () -> log := "l50" :: !log);
  Clock.after_ main 50 (fun () -> log := "m50" :: !log);
  Clock.after_ lane 100 (fun () -> log := "l100" :: !log);
  lane.Clock.now <- 10;
  Lockstep.merge_lane ~into:main lane;
  Alcotest.(check int) "merged clock at the latest lane time" 10
    main.Clock.now;
  Alcotest.(check bool) "lane emptied" true
    (Clock.next_event_time lane = None);
  Clock.advance main 200;
  Alcotest.(check (list string))
    "merged events fire in global (at, seq) order"
    [ "l50"; "m50"; "m100"; "l100" ]
    (List.rev !log)

(* ------------------------------- suite ------------------------------- *)

let () =
  Alcotest.run "lockstep"
    [ ( "quantum=1 identity",
        List.map
          (fun ((label, _) as tier) ->
            Alcotest.test_case label `Slow (test_q1_identity tier))
          tiers );
      ( "quantum sweep",
        [ Alcotest.test_case "final state invariant across quanta" `Slow
            test_quantum_sweep;
          Alcotest.test_case "slicing is not vacuous" `Quick
            test_slicing_not_vacuous ] );
      ( "concurrent cores",
        [ Alcotest.test_case "interleave = domains" `Slow
            test_concurrent_interleave_eq_domains;
          Alcotest.test_case "workload overlapped, skew bounded" `Slow
            test_concurrent_did_overlap ] );
      ( "driver units",
        [ Alcotest.test_case "commit order (time, lane, arrival)" `Quick
            test_commit_order;
          Alcotest.test_case "skew bounded by quantum + tail" `Quick
            test_skew_bounded;
          Alcotest.test_case "deadlock detected" `Quick
            test_deadlock_detected;
          Alcotest.test_case "clean finish is not a deadlock" `Quick
            test_clean_finish_is_not_deadlock;
          Alcotest.test_case "commit wakes a blocked lane" `Quick
            test_blocked_lane_wakes_on_commit;
          Alcotest.test_case "synthetic domains = interleave" `Quick
            test_interleave_eq_domains_synthetic;
          Alcotest.test_case "merge_lane preserves global order" `Quick
            test_merge_lane_preserves_order ] ) ]
