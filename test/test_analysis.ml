(* Static verification layer (arksim analyze): the rule validator must
   exonerate every shipped translation rule and convict a deliberately
   broken one; the image passes must pass every seed kernel variant
   clean and flag crafted bad images (unknown ABI callee, untranslatable
   instruction on the hot path, stack overrun) with the exact golden
   finding. *)

open Tk_isa.Types
module Asm = Tk_isa.Asm
module Rules = Tk_dbt.Rules
module Finding = Tk_analysis.Finding
module Rule_check = Tk_analysis.Rule_check
module Cfg = Tk_analysis.Cfg
module Image_lint = Tk_analysis.Image_lint
module Abi_check = Tk_analysis.Abi_check
module Layout = Tk_kernel.Layout
module Variants = Tk_kernel.Variants
module Kabi = Tk_kernel.Kabi

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let has ~code ~where_sub fs =
  List.exists
    (fun (f : Finding.t) ->
      f.Finding.code = code
      &&
      let w = f.Finding.where and s = where_sub in
      let lw = String.length w and ls = String.length s in
      let rec at i = i + ls <= lw && (String.sub w i ls = s || at (i + 1)) in
      at 0)
    fs

(* ------------------------- rule validator ---------------------------- *)

let test_rules_clean () =
  let r = Rule_check.validate () in
  let s = r.Rule_check.stats in
  checki "Table 3 spec total" 558 s.Rule_check.spec_forms;
  checkb "every implemented non-control form hits the grid" true
    (s.Rule_check.validated
     + s.Rule_check.control_flow + s.Rule_check.fallback
    = s.Rule_check.implemented);
  checkb "grid is dense (>= 100k states)" true (s.Rule_check.states >= 100_000);
  checki "zero divergent states" 0 s.Rule_check.divergent;
  checki "no rule findings" 0 (List.length r.Rule_check.findings)

(* a seeded wrong rule: EOR legalized as ORR — the validator must name
   the exact spec form and a concrete machine state *)
let test_rules_catch_seeded_bug () =
  let broken ~gpc (i : inst) =
    match i.op with
    | Dp (EOR, s, rd, rn, op2) ->
      let cat, _ = Rules.legalize ~gpc i in
      (cat, [ { i with op = Dp (ORR, s, rd, rn, op2) } ])
    | _ -> Rules.legalize ~gpc i
  in
  let r = Rule_check.validate ~legalize:broken () in
  let s = r.Rule_check.stats in
  checkb "divergences detected" true (s.Rule_check.divergent > 0);
  checkb "finding names the eor form" true
    (has ~code:"rule-divergence" ~where_sub:"eor" r.Rule_check.findings);
  checkb "no other form convicted" true
    (List.for_all
       (fun (f : Finding.t) ->
         String.length f.Finding.where >= 3
         && String.sub f.Finding.where 0 3 = "eor")
       r.Rule_check.findings);
  (* the divergence report pins the machine state that exposed it *)
  checkb "finding carries cond/flags/vec state" true
    (List.for_all
       (fun (f : Finding.t) ->
         let d = f.Finding.detail in
         let mem sub =
           let ls = String.length sub and ld = String.length d in
           let rec at i =
             i + ls <= ld && (String.sub d i ls = sub || at (i + 1))
           in
           at 0
         in
         mem "cond=" && mem "flags=" && mem "vec=")
       r.Rule_check.findings)

(* a rule emitting a v7a-only amendment must be convicted even before
   execution, by the encodability screen *)
let test_rules_catch_unencodable_amendment () =
  let broken ~gpc (i : inst) =
    match i.op with
    | Dp (RSB, _, _, _, _) ->
      (* RSC is exactly the kind of host instruction v7m lacks *)
      (Tk_isa.Spec.No_counterpart, [ { i with op = Dp (RSC, false, 0, 1, Reg 2) } ])
    | _ -> Rules.legalize ~gpc i
  in
  let r = Rule_check.validate ~legalize:broken () in
  checkb "encodability screen fires" true
    (has ~code:"amendment-not-encodable" ~where_sub:"rsb"
       r.Rule_check.findings)

(* ------------------------ seed images are clean ----------------------- *)

let build lay = (Tk_drivers.Platform.build_image ~layout:lay ()).Tk_kernel.Image.image

let test_seed_variants_lint_clean () =
  List.iter
    (fun (lay : Layout.t) ->
      let r = Image_lint.lint (build lay) in
      checki
        (Printf.sprintf "%s: no error findings" lay.Layout.version)
        0
        (List.length (Finding.errors r.Image_lint.findings));
      checkb
        (Printf.sprintf "%s: stack fits budget" lay.Layout.version)
        true
        (r.Image_lint.stack.Image_lint.sb_worst
         + r.Image_lint.stack.Image_lint.sb_irq
        <= r.Image_lint.stack.Image_lint.sb_budget);
      checkb
        (Printf.sprintf "%s: census nonempty" lay.Layout.version)
        true
        (List.length r.Image_lint.census > 0))
    Variants.all

let test_seed_variants_abi_clean () =
  List.iter
    (fun (lay : Layout.t) ->
      let r = Abi_check.check (build lay) in
      checki
        (Printf.sprintf "%s: abi clean" lay.Layout.version)
        0
        (List.length (Finding.errors r.Abi_check.findings));
      (* the narrow boundary is actually exercised *)
      List.iter
        (fun cls ->
          checkb
            (Printf.sprintf "%s: some %s bl sites" lay.Layout.version cls)
            true
            (match List.assoc_opt cls r.Abi_check.class_counts with
            | Some n -> n > 0
            | None -> false))
        [ "emulated"; "hooked"; "cold"; "translated" ])
    Variants.all

(* ------------------------- crafted bad images ------------------------- *)

let base = Tk_machine.Soc.kernel_base

let ret = at (Bx lr)

(* a bl whose target is neither a function entry nor any symbol: the
   Figure 3 failure mode the gate exists for *)
let test_unknown_callee_convicted () =
  let img =
    Asm.link ~base
      [ { Asm.name = "kernel_main";
          items = [ Asm.Ins (at (Bl 0x4000)); Asm.Ins ret ] } ]
      []
  in
  let r = Abi_check.check img in
  checkb "unknown-callee error" true
    (has ~code:"unknown-callee" ~where_sub:"kernel_main"
       (Finding.errors r.Abi_check.findings))

let test_bl_into_body_convicted () =
  let img =
    Asm.link ~base
      [ { Asm.name = "victim";
          items = [ Asm.Ins (at Nop); Asm.Ins (at Nop); Asm.Ins ret ] };
        (* bl back into victim+4, skipping the entry point: the bl sits
           at victim+12, so the offset is -8 *)
        { Asm.name = "kernel_main";
          items = [ Asm.Ins (at (Bl (-8))); Asm.Ins ret ] } ]
      []
  in
  let r = Abi_check.check img in
  checkb "bl-into-function-body error" true
    (has ~code:"bl-into-function-body" ~where_sub:"kernel_main"
       (Finding.errors r.Abi_check.findings))

(* an untranslatable instruction — a pre-indexed load whose offset is
   too wide for the v7m writeback encoding AND whose writeback lands in
   its own destination — reachable from an ARK upcall entry: hot-path
   fallback warning *)
let test_untranslatable_hot_flagged () =
  let bad =
    at
      (Mem { ld = true; size = Word; rt = 1; rn = 1; off = Oimm 512; idx = Pre })
  in
  let img =
    Asm.link ~base
      [ { Asm.name = Kabi.worker_thread; items = [ Asm.Ins bad; Asm.Ins ret ] } ]
      []
  in
  let r = Image_lint.lint img in
  checkb "untranslatable-hot warning" true
    (has ~code:"untranslatable-hot" ~where_sub:Kabi.worker_thread
       r.Image_lint.findings);
  checkb "counted as fallback in the census" true
    (match List.assoc_opt "fallback" r.Image_lint.census with
    | Some n -> n = 1
    | None -> false)

(* a frame bigger than the per-thread stack budget must be a hard error *)
let test_stack_overrun_convicted () =
  let big = Tk_machine.Soc.stack_size * 2 in
  let img =
    Asm.link ~base
      [ { Asm.name = "kernel_main";
          items =
            [ Asm.Ins (at (Dp (SUB, false, 13, 13, Imm big)));
              Asm.Ins (at (Dp (ADD, false, 13, 13, Imm big)));
              Asm.Ins ret ] } ]
      []
  in
  let r = Image_lint.lint img in
  checkb "stack-overrun error" true
    (has ~code:"stack-overrun" ~where_sub:"kernel_main"
       (Finding.errors r.Image_lint.findings));
  checki "bound equals the crafted frame" big
    r.Image_lint.stack.Image_lint.sb_worst

(* ------------------------- findings plumbing -------------------------- *)

let test_finding_json () =
  let f =
    Finding.v ~pass:"abi" ~severity:Finding.Error ~code:"unknown-callee"
      ~where:"kernel_main" "bl targets \"nowhere\""
  in
  Alcotest.(check string)
    "json record"
    "{\"image\":\"v4.4\",\"pass\":\"abi\",\"severity\":\"error\",\
     \"code\":\"unknown-callee\",\"where\":\"kernel_main\",\
     \"detail\":\"bl targets \\\"nowhere\\\"\"}"
    (Finding.to_json ~extra:[ ("image", "v4.4") ] f)

let test_abi_structural_clean () =
  checki "Kabi sets well-formed" 0
    (List.length (Abi_check.structural_findings ()))

let () =
  Alcotest.run "analysis"
    [ ( "translation-rule validator",
        [ Alcotest.test_case "full grid, zero divergence" `Slow
            test_rules_clean;
          Alcotest.test_case "seeded wrong rule convicted" `Slow
            test_rules_catch_seeded_bug;
          Alcotest.test_case "unencodable amendment convicted" `Slow
            test_rules_catch_unencodable_amendment ] );
      ( "seed kernels pass the gate",
        [ Alcotest.test_case "image lint clean on all variants" `Quick
            test_seed_variants_lint_clean;
          Alcotest.test_case "abi clean on all variants" `Quick
            test_seed_variants_abi_clean ] );
      ( "crafted violations are caught",
        [ Alcotest.test_case "unknown callee" `Quick
            test_unknown_callee_convicted;
          Alcotest.test_case "bl into function body" `Quick
            test_bl_into_body_convicted;
          Alcotest.test_case "untranslatable on hot path" `Quick
            test_untranslatable_hot_flagged;
          Alcotest.test_case "stack overrun" `Quick
            test_stack_overrun_convicted ] );
      ( "findings plumbing",
        [ Alcotest.test_case "JSONL record shape" `Quick test_finding_json;
          Alcotest.test_case "Kabi structurally well-formed" `Quick
            test_abi_structural_clean ] ) ]
