(* The superblock tier: trace formation over hot block chains, macro-op
   fusion, and store-driven invalidation of a formed multi-block trace.

   The engine-level tests run small hand-built guest programs through
   both the native interpreter and a superblock-tier engine and diff the
   architectural outcome (the §7.3 side-by-side methodology); the trace
   programs are shaped so the hot loop body straddles the 16-instruction
   block limit — formation must stitch a chain of at least two
   translation blocks. The SMC regression stores a fresh encoding into
   the SECOND constituent block of a formed trace: the whole trace must
   be evicted and the rewritten word picked up at the next block
   boundary, exactly when the interpreter's decode cache would pick it
   up. The harness-level test runs a full offloaded suspend/resume
   cycle with the tier on. *)

open Tk_isa
open Tk_isa.Types
open Tk_machine
open Tk_dbt
module Ark_run = Tk_harness.Ark_run

let rep n i = List.init n (fun _ -> Asm.Ins i)

type arch = { regs : int array; flags : int }

let run_native image entry =
  let soc = Soc.create () in
  Mem.load_image soc.Soc.mem image;
  let interp = Interp.create ~soc () in
  let stop = ref false in
  interp.Interp.on_svc <- (fun _ _ _ -> stop := true);
  let cpu = interp.Interp.cpu in
  let stub = Soc.kernel_base + (4 * Array.length image.Asm.words) + 64 in
  Mem.ram_write soc.Soc.mem stub 4 (V7a.encode_exn (at (Svc 0)));
  cpu.Exec.r.(Types.lr) <- stub;
  Interp.set_pc interp (Asm.symbol image entry);
  let steps = ref 0 in
  (try
     while not !stop do
       incr steps;
       if !steps > 1_000_000 then failwith "native runaway";
       Interp.step interp
     done
   with e -> Alcotest.failf "native arm: %s" (Printexc.to_string e));
  { regs = Array.copy cpu.Exec.r; flags = Exec.flags_word cpu }

let run_sb ?(threshold = 4) image entry =
  let soc = Soc.create () in
  Mem.load_image soc.Soc.mem image;
  let engine = Engine.create ~soc ~mode:Translator.Ark () in
  engine.Engine.superblock <- true;
  engine.Engine.sb_threshold <- threshold;
  let cpu = Exec.make_cpu () in
  cpu.Exec.r.(Types.lr) <- Layout.exit_magic;
  cpu.Exec.r.(Types.pc) <- Engine.entry_host engine (Asm.symbol image entry);
  (try Engine.run engine cpu ~fuel:5_000_000 with
  | Engine.Context_exit -> ()
  | e -> Alcotest.failf "superblock arm: %s" (Printexc.to_string e));
  ( { regs = Array.init 16 (fun i -> Engine.guest_reg engine cpu i);
      flags = Exec.flags_word cpu },
    engine )

let check_arch label n s =
  for i = 0 to 10 do
    Alcotest.(check int)
      (Printf.sprintf "%s: r%d matches native" label i)
      n.regs.(i) s.regs.(i)
  done;
  Alcotest.(check int) (label ^ ": flags match native") n.flags s.flags

(* ------------------------- trace formation --------------------------- *)

(* hot loop whose body spans two chained translation blocks: 18 pad adds
   overflow the 16-instruction block limit, so the backedge block chain
   is [.top][.top+0x40] — formation must stitch both *)
let hot_image () =
  let items =
    [ Asm.Ins (at (Movw (0, 0))); Asm.Ins (at (Movw (10, 0)));
      Asm.Ins (at (Movw (1, 200))); Asm.Label ".top" ]
    @ rep 18 (at (Dp (ADD, false, 0, 0, Imm 1)))
    @ [ Asm.Ins (at (Dp (ADD, false, 10, 10, Imm 3)));
        Asm.Ins (at (Dp (SUB, false, 1, 1, Imm 1)));
        Asm.Ins (at (Dp (CMP, true, 0, 1, Imm 0)));
        Asm.Bcc (NE, ".top");
        Asm.Ins (at (Bx Types.lr)) ]
  in
  Asm.link ~base:Soc.kernel_base [ { Asm.name = "hotfn"; items } ] []

let test_formation () =
  let image = hot_image () in
  let n = run_native image "hotfn" in
  let s, engine = run_sb image "hotfn" in
  check_arch "hot loop" n s;
  Alcotest.(check bool) "a multi-block trace formed" true
    (engine.Engine.traces_formed >= 1);
  Alcotest.(check bool) "cmp+branch idiom fused" true
    (engine.Engine.fusions_applied >= 1);
  Alcotest.(check int) "nothing invalidated" 0 engine.Engine.invalidations

(* a threshold the loop never reaches leaves the tier inert *)
let test_below_threshold () =
  let image = hot_image () in
  let n = run_native image "hotfn" in
  let s, engine = run_sb ~threshold:1_000_000 image "hotfn" in
  check_arch "cold loop" n s;
  Alcotest.(check int) "no trace formed" 0 engine.Engine.traces_formed

(* ---------------------- SMC across a formed trace -------------------- *)

(* The loop's first block holds the patch target; the second constituent
   block stores a new encoding over it on the iteration where r1 = 20
   (well after formation at threshold 4). Program order puts the store
   AFTER the patch site within the iteration, so both arms execute the
   old word on the store iteration and must pick up the new word on the
   next — the DBT side via whole-trace eviction at the backedge. *)
let smc_image () =
  let enc = V7a.encode_exn (at (Dp (ADD, false, 0, 0, Imm 100))) in
  let str_word =
    Mem { ld = false; size = Word; rt = 2; rn = 3; off = Oimm 0; idx = Offset }
  in
  let items =
    [ Asm.Ins (at (Movw (0, 0))); Asm.Ins (at (Movw (1, 40)));
      Asm.Label ".top"; Asm.Label ".patch";
      Asm.Ins (at (Dp (ADD, false, 0, 0, Imm 2))) ]
    @ rep 15 (at (Dp (ADD, false, 0, 0, Imm 1)))
    @ [ (* second block of the chain starts here *)
        Asm.Ins (at (Dp (CMP, true, 0, 1, Imm 20)));
        Asm.Bcc (NE, ".skip");
        Asm.Ins (at (Movw (2, enc land 0xFFFF)));
        Asm.Ins (at (Movt (2, enc lsr 16)));
        Asm.Adr (3, ".patch");
        Asm.Ins (at str_word);
        Asm.Label ".skip";
        Asm.Ins (at (Dp (SUB, false, 1, 1, Imm 1)));
        Asm.Ins (at (Dp (CMP, true, 0, 1, Imm 0)));
        Asm.Bcc (NE, ".top");
        Asm.Ins (at (Bx Types.lr)) ]
  in
  Asm.link ~base:Soc.kernel_base [ { Asm.name = "smcfn"; items } ] []

let test_smc_in_trace () =
  let image = smc_image () in
  let n = run_native image "smcfn" in
  let s, engine = run_sb image "smcfn" in
  check_arch "smc loop" n s;
  Alcotest.(check bool) "trace had formed before the store" true
    (engine.Engine.traces_formed >= 1);
  Alcotest.(check bool) "store into the trace was caught" true
    (engine.Engine.invalidations >= 1);
  Alcotest.(check bool) "whole cache evicted" true
    (engine.Engine.flushes >= 1)

(* ----------------------- full offloaded cycle ------------------------ *)

let test_full_cycle () =
  let ark = Ark_run.create ~superblock:true () in
  (match Ark_run.suspend_resume_cycle ark with
  | `Ok -> ()
  | `Fell_back r -> Alcotest.failf "unexpected fallback: %s" r);
  let e = ark.Ark_run.ark.Transkernel.Ark.engine in
  Alcotest.(check bool) "traces formed during the offloaded phases" true
    (e.Engine.traces_formed >= 1);
  Alcotest.(check bool) "macro-ops fused" true (e.Engine.fusions_applied >= 1)

let () =
  Alcotest.run "superblock"
    [ ( "trace formation",
        [ Alcotest.test_case "hot chain forms and matches native" `Quick
            test_formation;
          Alcotest.test_case "unreached threshold stays inert" `Quick
            test_below_threshold ] );
      ( "invalidation",
        [ Alcotest.test_case "store into a formed trace evicts it" `Quick
            test_smc_in_trace ] );
      ( "harness",
        [ Alcotest.test_case "offloaded cycle completes with traces" `Quick
            test_full_cycle ] ) ]
