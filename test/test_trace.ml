(* Flight-recorder regression — pins the event stream itself.

   The neutrality suite pins the simulated counters; this suite pins
   what the recorder *observes*: a golden digest (per-kind event
   totals, total event count, and a hash over the retained ring) of
   one fixed suspend/resume cycle in the native and ARK arms with
   tracing enabled. Any change to emission sites, event ordering, or
   payloads shows up here.

   Run the binary with TK_CAPTURE=1 to print fresh goldens. Recapture
   is legitimate when emission coverage intentionally changes (a new
   event kind, a new probe), never to paper over an accidental change
   in what existing sites record.

   The rest are unit checks on recorder mechanics: disabled recorders
   stay empty, kind filters mask counts, the ring drops oldest events
   at capacity, and the JSONL dump is line-per-event well-formed. *)

module Trace = Tk_stats.Trace
module Translator = Tk_dbt.Translator
module Native_run = Tk_harness.Native_run
module Ark_run = Tk_harness.Ark_run

type dg = { counts : int list; total : int; hash : int }

let pp d =
  Printf.sprintf "{ counts = [ %s ];\n    total = %d; hash = 0x%x }"
    (String.concat "; " (List.map string_of_int d.counts))
    d.total d.hash

let digest tr =
  let counts, total, hash = Trace.digest tr in
  { counts; total; hash }

let native_trace ?cap ?filter () =
  let nat = Native_run.create () in
  (* enable after boot: the trace covers exactly one cycle *)
  Trace.enable ?cap ?filter (Native_run.trace nat);
  ignore (Native_run.suspend_resume_cycle nat);
  Native_run.trace nat

let ark_trace () =
  let ark = Ark_run.create () in
  Trace.enable (Ark_run.trace ark);
  (match Ark_run.suspend_resume_cycle ark with
  | `Ok -> ()
  | `Fell_back r -> Alcotest.failf "unexpected fallback: %s" r);
  Ark_run.trace ark

(* ------------------- goldens (captured from seed) -------------------- *)

let golden_native =
  { counts =
      [ 1621853; 734337; 182182; 130; 126; 16; 0; 0; 0; 42; 0; 8064; 912 ];
    total = 2538686; hash = 0x30c7fcbacb7e8e83 }

let golden_ark =
  { counts =
      [ 1563306; 710453; 171367; 26; 13; 16; 297; 425; 0; 42; 0; 7063; 1041 ];
    total = 2445945; hash = 0x130c1faac40c192d }

let check_digest label golden got =
  if got <> golden then
    Alcotest.failf "%s: trace digest drifted\n  golden: %s\n  got:    %s"
      label (pp golden) (pp got)

let test_golden_native () =
  check_digest "native cycle" golden_native (digest (native_trace ()))

let test_golden_ark () =
  check_digest "ARK cycle" golden_ark (digest (ark_trace ()))

(* ------------------------ recorder mechanics ------------------------- *)

let test_disabled_empty () =
  let nat = Native_run.create () in
  ignore (Native_run.suspend_resume_cycle nat);
  let tr = Native_run.trace nat in
  Alcotest.(check int) "no events recorded" 0 tr.Trace.total;
  Alcotest.(check int) "nothing retained" 0 (Trace.retained tr);
  Alcotest.(check bool) "no phase marks" true (tr.Trace.marks = [])

let test_filter_masks () =
  let filter =
    match Trace.filter_of_names [ "irq" ] with
    | Ok m -> m
    | Error n -> Alcotest.failf "bad filter name %s" n
  in
  let tr = native_trace ~filter () in
  Alcotest.(check int) "no retires counted" 0 tr.Trace.counts.(Trace.ev_retire);
  Alcotest.(check int) "no reads counted" 0 tr.Trace.counts.(Trace.ev_read);
  Alcotest.(check int) "no writes counted" 0 tr.Trace.counts.(Trace.ev_write);
  Alcotest.(check bool) "irq delivers counted" true
    (tr.Trace.counts.(Trace.ev_irq_deliver) > 0);
  (* phase marks snapshot regardless of the event filter *)
  Alcotest.(check bool) "phase rows survive filtering" true
    (Trace.phase_rows tr <> [])

let test_ring_wrap () =
  let cap = 512 in
  let tr = native_trace ~cap () in
  Alcotest.(check int) "retained bounded by cap" cap (Trace.retained tr);
  Alcotest.(check bool) "older events dropped" true (Trace.dropped tr > 0);
  Alcotest.(check int) "total = retained + dropped" tr.Trace.total
    (Trace.retained tr + Trace.dropped tr);
  let visited = ref 0 in
  Trace.iter tr (fun ~time:_ ~core:_ ~kind:_ ~a:_ ~b:_ -> incr visited);
  Alcotest.(check int) "iter visits exactly the retained" cap !visited

(* every event code must round-trip through the name vocabulary: a kind
   added without a name (or a name without a parse) silently falls out
   of --trace-filter and of every JSONL consumer keyed on names *)
let test_kind_name_totality () =
  for k = 0 to Trace.nkinds - 1 do
    let n = Trace.kind_name k in
    if n = "?" || n = "" then
      Alcotest.failf "kind %d has no proper name (got %S)" k n;
    match Trace.kind_of_name n with
    | Some k' ->
      Alcotest.(check int) (Printf.sprintf "%S round-trips" n) k k'
    | None -> Alcotest.failf "kind %d name %S does not parse back" k n
  done;
  Alcotest.(check bool) "out-of-range code has no name" true
    (Trace.kind_name Trace.nkinds = "?");
  Alcotest.(check bool) "unknown name rejected" true
    (Trace.kind_of_name "not-a-kind" = None)

(* the filter-group aliases must cover exactly their member events:
   an alias silently gaining or losing a member changes what --trace-
   filter records without any parse error *)
let test_filter_aliases_exact () =
  let mask names =
    match Trace.filter_of_names names with
    | Ok m -> m
    | Error n -> Alcotest.failf "bad filter name %s" n
  in
  let bits kinds = List.fold_left (fun m k -> m lor (1 lsl k)) 0 kinds in
  Alcotest.(check int) "mem = read + write"
    (bits [ Trace.ev_read; Trace.ev_write ])
    (mask [ "mem" ]);
  Alcotest.(check int) "irq = raise + deliver"
    (bits [ Trace.ev_irq_raise; Trace.ev_irq_deliver ])
    (mask [ "irq" ]);
  Alcotest.(check int) "dbt = translate + chain + invalidate + form"
    (bits
       [ Trace.ev_translate; Trace.ev_chain; Trace.ev_invalidate;
         Trace.ev_form ])
    (mask [ "dbt" ]);
  Alcotest.(check int) "all covers every kind" Trace.all_kinds
    (mask [ "all" ]);
  Alcotest.(check int) "all_kinds is dense over nkinds"
    ((1 lsl Trace.nkinds) - 1)
    Trace.all_kinds;
  (* plain kind names OR into the same mask space as the groups *)
  Alcotest.(check int) "explicit members equal their group"
    (mask [ "irq-raise"; "irq-deliver" ])
    (mask [ "irq" ])

let test_jsonl_shape () =
  let tr = native_trace ~cap:256 () in
  let path = Filename.temp_file "tk_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Trace.dump_jsonl oc tr;
      close_out oc;
      let ic = open_in path in
      let lines = ref 0 in
      (try
         while true do
           let l = input_line ic in
           incr lines;
           let ok =
             String.length l > 2
             && l.[0] = '{'
             && l.[String.length l - 1] = '}'
           in
           if not ok then Alcotest.failf "malformed JSONL line: %s" l
         done
       with End_of_file -> close_in ic);
      Alcotest.(check int) "one line per retained event" (Trace.retained tr)
        !lines)

let () =
  if Sys.getenv_opt "TK_CAPTURE" <> None then begin
    Printf.printf "let golden_native =\n  %s\n" (pp (digest (native_trace ())));
    Printf.printf "let golden_ark =\n  %s\n" (pp (digest (ark_trace ())));
    exit 0
  end;
  Alcotest.run "trace"
    [ ( "golden trace digests",
        [ Alcotest.test_case "native cycle" `Quick test_golden_native;
          Alcotest.test_case "ARK cycle" `Quick test_golden_ark ] );
      ( "recorder mechanics",
        [ Alcotest.test_case "disabled recorder stays empty" `Quick
            test_disabled_empty;
          Alcotest.test_case "kind filter masks counts" `Quick
            test_filter_masks;
          Alcotest.test_case "ring wraps at capacity" `Quick test_ring_wrap;
          Alcotest.test_case "JSONL dump is line-per-event" `Quick
            test_jsonl_shape ] );
      ( "event vocabulary",
        [ Alcotest.test_case "every kind round-trips by name" `Quick
            test_kind_name_totality;
          Alcotest.test_case "group aliases cover exact members" `Quick
            test_filter_aliases_exact ] ) ]
