(* The translation certifier and the SMC-clean abstract interpretation.

   Certifier: a crafted hot chain (same shape as the superblock tests —
   the loop body straddles the block limit) must certify clean, with the
   r10-in-r12 re-homing applied; a deliberately corrupted plan (one
   fused constant off by one) must be convicted with a concrete state;
   an engine whose [sb_certify] hook vetoes every plan must fall back to
   plain blocks and still match the native interpreter.

   Abstract interpretation: stack-disciplined functions prove clean,
   a seeded constant store into the code section convicts exactly its
   own word (word-granular ranges), and spans straddling the end of the
   code section stay conservatively SMC-suspect. CFG recovery keeps
   blocks reachable only through superblock side exits and feeds the
   indirect-call census.

   Elision: with the proven clean map installed, image-window stores
   skip the cover-map probe (counted) and the architectural outcome
   still matches the native arm; on a self-modifying image the patch
   word stays unclean, so the store is caught, the trace evicted, and
   the map dropped with the flush. *)

open Tk_isa
open Tk_isa.Types
open Tk_machine
open Tk_dbt
module Cfg = Tk_analysis.Cfg
module Absint = Tk_analysis.Absint
module Certify = Tk_analysis.Certify
module Image_lint = Tk_analysis.Image_lint
module Finding = Tk_analysis.Finding

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let rep n i = List.init n (fun _ -> Asm.Ins i)
let ret = at (Bx Types.lr)
let base = Soc.kernel_base
let classify_none _ = Translator.T_normal

type arch = { regs : int array; flags : int }

let run_native image entry =
  let soc = Soc.create () in
  Mem.load_image soc.Soc.mem image;
  let interp = Interp.create ~soc () in
  let stop = ref false in
  interp.Interp.on_svc <- (fun _ _ _ -> stop := true);
  let cpu = interp.Interp.cpu in
  let stub = base + (4 * Array.length image.Asm.words) + 64 in
  Mem.ram_write soc.Soc.mem stub 4 (V7a.encode_exn (at (Svc 0)));
  cpu.Exec.r.(Types.lr) <- stub;
  Interp.set_pc interp (Asm.symbol image entry);
  let steps = ref 0 in
  (try
     while not !stop do
       incr steps;
       if !steps > 1_000_000 then failwith "native runaway";
       Interp.step interp
     done
   with e -> Alcotest.failf "native arm: %s" (Printexc.to_string e));
  { regs = Array.copy cpu.Exec.r; flags = Exec.flags_word cpu }

(* superblock engine run with optional SMC-clean map / certifier hook *)
let run_sb ?(threshold = 4) ?ranges ?admit image entry =
  let soc = Soc.create () in
  Mem.load_image soc.Soc.mem image;
  let engine = Engine.create ~soc ~mode:Translator.Ark () in
  engine.Engine.superblock <- true;
  engine.Engine.sb_threshold <- threshold;
  (match ranges with Some r -> Engine.set_smc_map engine r | None -> ());
  (match admit with Some f -> engine.Engine.sb_certify <- Some f | None -> ());
  let cpu = Exec.make_cpu () in
  cpu.Exec.r.(Types.lr) <- Layout.exit_magic;
  cpu.Exec.r.(Types.pc) <- Engine.entry_host engine (Asm.symbol image entry);
  (try Engine.run engine cpu ~fuel:5_000_000 with
  | Engine.Context_exit -> ()
  | e -> Alcotest.failf "superblock arm: %s" (Printexc.to_string e));
  ( { regs = Array.init 16 (fun i -> Engine.guest_reg engine cpu i);
      flags = Exec.flags_word cpu },
    engine )

let check_arch label n s =
  for i = 0 to 10 do
    checki (Printf.sprintf "%s: r%d matches native" label i) n.regs.(i)
      s.regs.(i)
  done;
  checki (label ^ ": flags match native") n.flags s.flags

(* ------------------------- crafted images ----------------------------- *)

(* hot loop whose body straddles the block limit: the backedge chain is
   two translation blocks, and the guest never touches r12, so the
   planner re-homes r10 — the certifier must model both transforms *)
let hot_image () =
  let items =
    [ Asm.Ins (at (Movw (0, 0))); Asm.Ins (at (Movw (10, 0)));
      Asm.Ins (at (Movw (1, 200))); Asm.Label ".top" ]
    @ rep 18 (at (Dp (ADD, false, 0, 0, Imm 1)))
    @ [ Asm.Ins (at (Dp (ADD, false, 10, 10, Imm 3)));
        Asm.Ins (at (Dp (SUB, false, 1, 1, Imm 1)));
        Asm.Ins (at (Dp (CMP, true, 0, 1, Imm 0)));
        Asm.Bcc (NE, ".top");
        Asm.Ins ret ]
  in
  Asm.link ~base [ { Asm.name = "hotfn"; items } ] []

(* the chain the engine forms on [hot_image]: [.top] splits at the
   16-instruction limit, so the second constituent starts 64 bytes in *)
let hot_chain image =
  let top = Asm.symbol image "hotfn" + 12 in
  [ top; top + 64 ]

let plan_of image chain =
  Superblock.plan
    ~read_guest:(Certify.read_guest_of_image image)
    ~classify_target:classify_none
    ~block_limit:Translator.default_block_limit ~chain

let certify image plan =
  Certify.certify_plan
    ~read_guest:(Certify.read_guest_of_image image)
    ~classify_target:classify_none
    ~block_limit:Translator.default_block_limit plan

(* hot store loop: every iteration writes the counter into the image
   data window (probe territory), but the target is a proven constant
   past the code section — every code word is SMC-clean *)
let store_image () =
  let data = base + 0x8000 in
  let str_data =
    Mem { ld = false; size = Word; rt = 0; rn = 3; off = Oimm 0; idx = Offset }
  in
  let items =
    (* the target address is materialized inside the loop body: the
       analysis is per-block, so the store's base must be a constant in
       its own block for the word to prove clean *)
    [ Asm.Ins (at (Movw (0, 0))); Asm.Ins (at (Movw (1, 200)));
      Asm.Label ".top";
      Asm.Ins (at (Movw (3, data land 0xFFFF)));
      Asm.Ins (at (Movt (3, data lsr 16))) ]
    @ rep 13 (at (Dp (ADD, false, 0, 0, Imm 1)))
    @ [ Asm.Ins (at str_data);
        Asm.Ins (at (Dp (SUB, false, 1, 1, Imm 1)));
        Asm.Ins (at (Dp (CMP, true, 0, 1, Imm 0)));
        Asm.Bcc (NE, ".top");
        Asm.Ins ret ]
  in
  Asm.link ~base [ { Asm.name = "storefn"; items } ] []

(* the §7.3 SMC shape: the second constituent block of the formed trace
   patches the first block's code on the r1 = 20 iteration *)
let smc_image () =
  let enc = V7a.encode_exn (at (Dp (ADD, false, 0, 0, Imm 100))) in
  let str_word =
    Mem { ld = false; size = Word; rt = 2; rn = 3; off = Oimm 0; idx = Offset }
  in
  let items =
    [ Asm.Ins (at (Movw (0, 0))); Asm.Ins (at (Movw (1, 40)));
      Asm.Label ".top"; Asm.Label ".patch";
      Asm.Ins (at (Dp (ADD, false, 0, 0, Imm 2))) ]
    @ rep 15 (at (Dp (ADD, false, 0, 0, Imm 1)))
    @ [ Asm.Ins (at (Dp (CMP, true, 0, 1, Imm 20)));
        Asm.Bcc (NE, ".skip");
        Asm.Ins (at (Movw (2, enc land 0xFFFF)));
        Asm.Ins (at (Movt (2, enc lsr 16)));
        Asm.Adr (3, ".patch");
        Asm.Ins (at str_word);
        Asm.Label ".skip";
        Asm.Ins (at (Dp (SUB, false, 1, 1, Imm 1)));
        Asm.Ins (at (Dp (CMP, true, 0, 1, Imm 0)));
        Asm.Bcc (NE, ".top");
        Asm.Ins ret ]
  in
  Asm.link ~base [ { Asm.name = "smcfn"; items } ] []

(* side exit inside the hot loop to a cold block nothing else reaches *)
let side_exit_image () =
  let items =
    [ Asm.Ins (at (Movw (0, 0))); Asm.Ins (at (Movw (1, 50)));
      Asm.Label ".top" ]
    @ rep 16 (at (Dp (ADD, false, 0, 0, Imm 1)))
    @ [ Asm.Ins (at (Dp (CMP, true, 0, 0, Imm 0)));
        Asm.Bcc (EQ, ".cold");
        Asm.Ins (at (Dp (SUB, false, 1, 1, Imm 1)));
        Asm.Ins (at (Dp (CMP, true, 0, 1, Imm 0)));
        Asm.Bcc (NE, ".top");
        Asm.Ins ret;
        Asm.Label ".cold";
        Asm.Ins (at (Movw (0, 0xDEAD)));
        Asm.Ins ret ]
  in
  Asm.link ~base [ { Asm.name = "kernel_main"; items } ] []

(* --------------------------- certifier -------------------------------- *)

let test_certify_clean_plan () =
  let image = hot_image () in
  let p = plan_of image (hot_chain image) in
  checkb "r10 re-homed into r12 across the trace" true
    p.Superblock.p_cached_r10;
  let o = certify image p in
  checkb "states executed" true (o.Certify.o_states > 0);
  checki "no divergence" 0 (List.length o.Certify.o_problems)

(* the seeded bug: one fused immediate off by one — every downstream
   state diverges and the certifier must say so *)
let test_certify_seeded_bug () =
  let image = hot_image () in
  let p = plan_of image (hot_chain image) in
  let mutated = ref false in
  let p_emits =
    List.map
      (fun e ->
        match e with
        | Translator.E_inst { op = Dp (ADD, false, 0, 0, Imm 1); _ }
          when not !mutated ->
          mutated := true;
          Translator.E_inst (at (Dp (ADD, false, 0, 0, Imm 2)))
        | e -> e)
      p.Superblock.p_emits
  in
  checkb "mutation applied" true !mutated;
  let o = certify image { p with Superblock.p_emits } in
  checkb "corrupted plan convicted" true (o.Certify.o_problems <> [])

(* dropping the woven r12 reload after re-homing is the reg-cache bug
   class; with no reload the trace reads a stale/havoced r12 *)
let test_certify_dropped_reload () =
  let image = hot_image () in
  let p = plan_of image (hot_chain image) in
  match p.Superblock.p_emits with
  | [] -> Alcotest.fail "empty plan"
  | _ :: rest ->
    let o = certify image { p with Superblock.p_emits = rest } in
    checkb "plan without its head emit convicted" true
      (o.Certify.o_problems <> [])

let test_certify_image_sweep () =
  let image = side_exit_image () in
  let r = Certify.certify_image ~classify_target:classify_none image in
  checkb "plans enumerated" true (r.Certify.r_plans >= 1);
  checki "zero divergent" 0 r.Certify.r_divergent;
  checki "no error findings" 0
    (List.length (Finding.errors r.Certify.findings))

let test_engine_certifier_veto () =
  let image = hot_image () in
  let n = run_native image "hotfn" in
  let s, engine = run_sb ~admit:(fun _ -> false) image "hotfn" in
  check_arch "vetoed formation" n s;
  checki "no trace formed" 0 engine.Engine.traces_formed;
  checkb "rejections counted" true (engine.Engine.certify_rejects >= 1)

let test_engine_certifier_admits () =
  let image = hot_image () in
  let admit =
    Certify.admit
      ~read_guest:(Certify.read_guest_of_image image)
      ~classify_target:classify_none
      ~block_limit:Translator.default_block_limit ()
  in
  let n = run_native image "hotfn" in
  let s, engine = run_sb ~admit image "hotfn" in
  check_arch "certified formation" n s;
  checkb "trace formed" true (engine.Engine.traces_formed >= 1);
  checki "nothing rejected" 0 engine.Engine.certify_rejects

(* ------------------------ CFG edge cases ------------------------------ *)

let test_cfg_side_exit_block () =
  let image = side_exit_image () in
  let t = Cfg.build image in
  let cold =
    List.find_opt
      (fun (b : Cfg.block) ->
        match b.Cfg.b_insts with
        | (_, { op = Movw (0, 0xDEAD); _ }) :: _ -> true
        | _ -> false)
      t.Cfg.blocks
  in
  match cold with
  | None -> Alcotest.fail "cold side-exit block not recovered"
  | Some cold ->
    checkb "reached only through the conditional side exit" true
      (List.exists
         (fun (b : Cfg.block) ->
           (match b.Cfg.b_term with Cfg.Cond_jump _ -> true | _ -> false)
           && List.mem cold.Cfg.b_start b.Cfg.b_succs)
         t.Cfg.blocks)

let test_cfg_indirect_census () =
  let image =
    Asm.link ~base
      [ { Asm.name = "kernel_main";
          items =
            [ Asm.Ins (at (Movw (4, 0x100))); Asm.Ins (at (Blx_r 4));
              Asm.Ins ret ] } ]
      []
  in
  let t = Cfg.build image in
  let f = List.find (fun f -> f.Cfg.f_name = "kernel_main") t.Cfg.funcs in
  checki "one indirect site" 1 (List.length (Cfg.indirect_sites t f));
  checkb "audit names the site" true
    (List.exists
       (fun (fi : Finding.t) -> fi.Finding.code = "indirect-call")
       (Image_lint.indirect_audit t));
  (* the engine mediates the blx itself: it must not count as fallback *)
  let counts, _ = Image_lint.fallback_census t in
  checkb "no fallback counted" true
    (Hashtbl.find_opt counts "fallback" = None)

(* ----------------------- abstract interpretation ---------------------- *)

let verdict_of r name =
  List.find (fun (v : Absint.fverdict) -> v.Absint.v_name = name)
    r.Absint.a_funcs

let in_ranges r addr =
  List.exists (fun (lo, hi) -> addr >= lo && addr < hi)
    r.Absint.a_clean_ranges

let test_absint_stack_clean () =
  let image =
    Asm.link ~base
      [ { Asm.name = "kernel_main";
          items =
            [ Asm.Ins (at (Dp (SUB, false, 13, 13, Imm 8)));
              Asm.Ins
                (at
                   (Mem
                      { ld = false; size = Word; rt = 0; rn = 13;
                        off = Oimm 4; idx = Offset }));
              Asm.Ins (at (Dp (ADD, false, 13, 13, Imm 8)));
              Asm.Ins ret ] } ]
      []
  in
  let r = Absint.analyze (Cfg.build image) in
  let v = verdict_of r "kernel_main" in
  checkb "stack store proves clean" true v.Absint.v_clean;
  checki "one store" 1 v.Absint.v_stores;
  checkb "counted as stack" true
    (match List.assoc_opt "stack" r.Absint.a_hist with
    | Some n -> n >= 1
    | None -> false);
  checkb "whole function's words are clean" true
    (Absint.clean_words r * 4 >= v.Absint.v_size)

(* the SMC store convicts only its own word: the ranges remain clean
   around it (word granularity, not function granularity) *)
let test_absint_smc_word_granular () =
  let entry = base in
  let image =
    Asm.link ~base
      [ { Asm.name = "kernel_main";
          items =
            [ Asm.Ins (at (Movw (3, entry land 0xFFFF)));
              Asm.Ins (at (Movt (3, entry lsr 16)));
              Asm.Ins
                (at
                   (Mem
                      { ld = false; size = Word; rt = 0; rn = 3;
                        off = Oimm 0; idx = Offset }));
              Asm.Ins ret ] } ]
      []
  in
  let r = Absint.analyze (Cfg.build image) in
  let v = verdict_of r "kernel_main" in
  checkb "SMC store convicts the function" true (not v.Absint.v_clean);
  checkb "histogram shows the code-section store" true
    (match List.assoc_opt "code" r.Absint.a_hist with
    | Some n -> n >= 1
    | None -> false);
  checkb "the store word itself is not clean" true
    (not (in_ranges r (entry + 8)));
  checkb "the neighbouring movw word stays clean" true
    (in_ranges r entry)

let test_absint_straddle_end () =
  let image =
    Asm.link ~base
      [ { Asm.name = "kernel_main";
          items = [ Asm.Ins (at Nop); Asm.Ins ret ] } ]
      []
  in
  let code_hi = image.Asm.base + image.Asm.code_size in
  checkb "span straddling the code end is SMC-suspect" true
    (Absint.classify_span image (code_hi - 2, code_hi + 2) = Absint.C_code);
  checkb "span at the boundary is image data" true
    (Absint.classify_span image (code_hi, code_hi + 4)
    = Absint.C_image_data);
  checkb "last code word is code" true
    (Absint.classify_span image (code_hi - 4, code_hi) = Absint.C_code);
  (* and through the analysis: a store whose constant target straddles
     the section end must convict *)
  let image2 =
    Asm.link ~base
      [ { Asm.name = "kernel_main";
          items =
            [ Asm.Ins (at (Movw (3, (code_hi - 2) land 0xFFFF)));
              Asm.Ins (at (Movt (3, (code_hi - 2) lsr 16)));
              Asm.Ins
                (at
                   (Mem
                      { ld = false; size = Word; rt = 0; rn = 3;
                        off = Oimm 0; idx = Offset }));
              Asm.Ins ret ] } ]
      []
  in
  let r = Absint.analyze (Cfg.build image2) in
  let v = verdict_of r "kernel_main" in
  checkb "straddling store convicts" true (not v.Absint.v_clean)

(* --------------------------- probe elision ---------------------------- *)

let test_elision_counts_and_matches () =
  let image = store_image () in
  let r = Absint.analyze (Cfg.build image) in
  checkb "crafted store loop proves fully clean" true
    (r.Absint.a_clean_ranges <> []);
  let n = run_native image "storefn" in
  let s_off, e_off = run_sb image "storefn" in
  check_arch "no map" n s_off;
  checki "no probe elided without a map" 0 e_off.Engine.probes_elided;
  let s_on, e_on = run_sb ~ranges:r.Absint.a_clean_ranges image "storefn" in
  check_arch "with map" n s_on;
  checkb "probes elided under the proven map" true
    (e_on.Engine.probes_elided > 0);
  checki "nothing invalidated" 0 e_on.Engine.invalidations

let test_elision_preserves_smc () =
  let image = smc_image () in
  let r = Absint.analyze (Cfg.build image) in
  (* the patch store's word is unclean, so the map cannot exempt it *)
  let n = run_native image "smcfn" in
  let s, engine = run_sb ~ranges:r.Absint.a_clean_ranges image "smcfn" in
  check_arch "smc with map" n s;
  checkb "store into the trace still caught" true
    (engine.Engine.invalidations >= 1);
  checkb "whole cache evicted" true (engine.Engine.flushes >= 1);
  checkb "map dropped with the flush" true (engine.Engine.smc_map = None)

let () =
  Alcotest.run "certify"
    [ ( "trace certifier",
        [ Alcotest.test_case "crafted hot chain certifies clean" `Quick
            test_certify_clean_plan;
          Alcotest.test_case "seeded fused-constant bug convicted" `Quick
            test_certify_seeded_bug;
          Alcotest.test_case "decapitated plan convicted" `Quick
            test_certify_dropped_reload;
          Alcotest.test_case "image sweep: all plans certify" `Quick
            test_certify_image_sweep;
          Alcotest.test_case "engine veto falls back to plain blocks"
            `Quick test_engine_certifier_veto;
          Alcotest.test_case "online admission keeps the tier live" `Quick
            test_engine_certifier_admits ] );
      ( "cfg edge cases",
        [ Alcotest.test_case "side-exit-only block recovered" `Quick
            test_cfg_side_exit_block;
          Alcotest.test_case "indirect call census" `Quick
            test_cfg_indirect_census ] );
      ( "abstract interpretation",
        [ Alcotest.test_case "stack discipline proves clean" `Quick
            test_absint_stack_clean;
          Alcotest.test_case "SMC store convicts its own word" `Quick
            test_absint_smc_word_granular;
          Alcotest.test_case "stores straddling the image end" `Quick
            test_absint_straddle_end ] );
      ( "probe elision",
        [ Alcotest.test_case "clean map elides probes, outcome matches"
            `Quick test_elision_counts_and_matches;
          Alcotest.test_case "self-modifying store still caught" `Quick
            test_elision_preserves_smc ] ) ]
