(* Cycle-domain telemetry regression — sampler mechanics, the energy
   ledger's reconciliation bar, and the manifest format.

   The neutrality suite pins the simulated counters with telemetry
   disabled; this suite covers the telemetry layer itself:

   - sampler mechanics against a synthetic clock: period, forced phase
     boundaries, gauge re-binding, capacity/wrap;
   - the cost discipline: a disabled sampler's tick and an enabled
     sampler's sample_now allocate nothing, and enabling sampling does
     not move any simulated counter (it only reads them);
   - ledger-vs-Power_model reconciliation on real native and ARK runs
     to the 0.1% acceptance bar (the construction makes it exact; the
     bar catches attribution drift);
   - a golden manifest digest over the deterministic metrics+counters
     sections of a fixed ARK run. TK_CAPTURE=1 prints a fresh golden;
     recapture is legitimate when the metric schema intentionally
     changes, never to paper over a drifted value. *)

module Ts = Tk_stats.Timeseries
module Attribution = Tk_energy.Attribution
module Power = Tk_energy.Power_model
module Manifest = Tk_harness.Run_manifest
module Native_run = Tk_harness.Native_run
module Ark_run = Tk_harness.Ark_run
module Soc = Tk_machine.Soc
module Core = Tk_machine.Core

(* ------------------------ synthetic sampler -------------------------- *)

let synthetic () =
  let now = ref 0 in
  let g1 = ref 0 and g2 = ref 0 in
  let ts = Ts.create () in
  ts.Ts.now <- (fun () -> !now);
  Ts.add_gauge ts "g1" (fun () -> !g1);
  Ts.add_gauge ts "g2" (fun () -> !g2);
  (ts, now, g1, g2)

let test_period () =
  let ts, now, g1, _ = synthetic () in
  Ts.enable ~cap:64 ~period_ns:100 ts;
  (* baseline row at enable *)
  Alcotest.(check int) "baseline row" 1 (Ts.retained ts);
  for t = 1 to 1000 do
    now := t;
    incr g1;
    Ts.tick ts
  done;
  (* one row per full period elapsed, plus the baseline *)
  Alcotest.(check int) "one row per period" 11 (Ts.retained ts);
  let rows = Ts.rows ts in
  Alcotest.(check int) "t_ns column strides by period" 100
    (rows.(2).(0) - rows.(1).(0));
  (* gauge column tracks the closure's value at sample time *)
  let gi = match Ts.col_index ts "g1" with Some i -> i | None -> -1 in
  Alcotest.(check int) "gauge sampled at its instant" 100 rows.(1).(gi)

let test_phase_boundary () =
  let ts, now, _, _ = synthetic () in
  Ts.enable ~cap:64 ~period_ns:1000 ts;
  now := 10;
  Ts.phase ts 42;
  now := 20;
  Ts.phase ts 7;
  Ts.sample_now ts;
  let rows = Ts.rows ts in
  (* a phase mark forces a row recording the OLD phase, then switches:
     epochs never straddle a mark *)
  Alcotest.(check int) "boundary row closes old phase" 0 rows.(1).(1);
  Alcotest.(check int) "second boundary closes phase 42" 42 rows.(2).(1);
  Alcotest.(check int) "rows after the mark carry the new phase" 7
    rows.(3).(1)

let test_gauge_rebind () =
  let ts, _, _, _ = synthetic () in
  (* re-wiring an existing name replaces the closure, keeps the order *)
  Ts.add_gauge ts "g1" (fun () -> 777);
  Ts.enable ~cap:8 ts;
  Alcotest.(check (array string)) "labels keep wiring order"
    [| "t_ns"; "phase"; "g1"; "g2" |]
    (Ts.labels ts);
  let gi = match Ts.col_index ts "g1" with Some i -> i | None -> -1 in
  Alcotest.(check int) "replaced closure is live" 777 (Ts.rows ts).(0).(gi)

let test_wrap () =
  let ts, now, _, _ = synthetic () in
  Ts.enable ~cap:16 ~period_ns:10 ts;
  for t = 1 to 1000 do
    now := t;
    Ts.tick ts
  done;
  Alcotest.(check int) "retained bounded by cap" 16 (Ts.retained ts);
  Alcotest.(check bool) "older rows dropped" true (Ts.dropped ts > 0);
  Alcotest.(check int) "total = retained + dropped" ts.Ts.total
    (Ts.retained ts + Ts.dropped ts);
  let rows = Ts.rows ts in
  (* oldest-first and contiguous after the wrap *)
  let ok = ref true in
  for i = 1 to Array.length rows - 1 do
    if rows.(i).(0) <> rows.(i - 1).(0) + 10 then ok := false
  done;
  Alcotest.(check bool) "rows oldest-first, period-contiguous" true !ok

(* -------------------------- cost discipline -------------------------- *)

(* Gc.minor_words itself boxes its float result, so measure against a
   calibration loop doing exactly the measurement overhead and nothing
   else. *)
let minor_delta f =
  let a = Gc.minor_words () in
  f ();
  Gc.minor_words () -. a

let test_zero_alloc () =
  let ts, now, _, _ = synthetic () in
  let baseline = minor_delta (fun () -> ()) in
  (* disabled tick: nothing but the hoisted-bool test *)
  let disabled =
    minor_delta (fun () ->
        for t = 1 to 100_000 do
          now := t;
          Ts.tick ts
        done)
  in
  Alcotest.(check (float 0.0)) "disabled tick allocates nothing" baseline
    disabled;
  (* enabled sample_now: columns are pre-sized, rows allocation-free *)
  Ts.enable ~cap:256 ~period_ns:1 ts;
  let enabled =
    minor_delta (fun () ->
        for t = 1 to 10_000 do
          now := ts.Ts.next_due + t;
          Ts.sample_now ts
        done)
  in
  Alcotest.(check (float 0.0)) "enabled sample_now allocates nothing"
    baseline enabled

(* enabling the sampler must not move any simulated counter: gauges are
   read-only and ticks charge no cycles *)
let test_sampling_neutral () =
  let run ~sample () =
    let ark = Ark_run.create () in
    let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
    if sample then Ts.enable ~period_ns:50_000 soc.Soc.sampler;
    (match Ark_run.suspend_resume_cycle ark with
    | `Ok -> ()
    | `Fell_back r -> Alcotest.failf "unexpected fallback: %s" r);
    let m3 = Core.activity soc.Soc.m3 and a9 = Core.activity soc.Soc.cpu in
    ( m3.Core.a_busy_cycles, m3.Core.a_instructions, m3.Core.a_cache_misses,
      a9.Core.a_busy_cycles, a9.Core.a_instructions,
      soc.Soc.clock.Tk_machine.Clock.now )
  in
  let off = run ~sample:false () and on = run ~sample:true () in
  Alcotest.(check bool) "simulated counters identical with sampling on" true
    (off = on)

(* ------------------------ ledger reconciliation ---------------------- *)

let cores = [ ("a9", Soc.a9_params); ("m3", Soc.m3_params) ]

(* window activity of the active core from the sampler's own first/last
   rows — the exact window the ledger integrates *)
let window_model ts ~active ~params =
  let rows = Ts.rows ts in
  let first = rows.(0) and last = rows.(Array.length rows - 1) in
  let g name r =
    match Ts.col_index ts name with Some i -> r.(i) | None -> 0
  in
  let d name = g (active ^ "_" ^ name) last - g (active ^ "_" ^ name) first in
  let act =
    { Core.a_busy_cycles = d "busy_cy"; a_busy_ps = d "busy_ps";
      a_idle_ps = d "idle_ps"; a_instructions = d "instrs";
      a_cache_misses = d "miss"; a_rd_bytes = d "rd_bytes";
      a_wr_bytes = d "wr_bytes" }
  in
  let dma =
    ( g "dma_rd_bytes" last - g "dma_rd_bytes" first,
      g "dma_wr_bytes" last - g "dma_wr_bytes" first )
  in
  Power.of_activity ~params ~act ~dma_bytes:dma ()

let check_reconciles label ts ~active ~params =
  Ts.sample_now ts;
  Alcotest.(check bool) (label ^ ": series non-empty") true
    (Ts.retained ts > 2);
  let ledger = Attribution.integrate ts ~cores ~active in
  let model = window_model ts ~active ~params in
  let checks = Attribution.reconcile ledger model in
  let worst = Attribution.max_rel_err checks in
  if worst > 0.001 then
    Alcotest.failf "%s: worst component error %.5f%% exceeds 0.1%%:\n%s" label
      (worst *. 100.)
      (String.concat "\n"
         (List.map
            (fun (k : Attribution.check) ->
              Printf.sprintf "  %-10s ledger %.3f uJ, model %.3f uJ"
                k.Attribution.k_comp k.Attribution.k_ledger_uj
                k.Attribution.k_model_uj)
            checks));
  (* and the ledger total on the active core matches the model total *)
  let lt = Attribution.active_total ledger and mt = Power.total model in
  if abs_float (lt -. mt) /. Float.max mt 1e-9 > 0.001 then
    Alcotest.failf "%s: ledger total %.3f uJ vs model %.3f uJ" label lt mt

let test_reconcile_ark () =
  let ark = Ark_run.create () in
  let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
  Ts.enable ~period_ns:50_000 soc.Soc.sampler;
  (match Ark_run.suspend_resume_cycle ark with
  | `Ok -> ()
  | `Fell_back r -> Alcotest.failf "unexpected fallback: %s" r);
  check_reconciles "ARK cycle" soc.Soc.sampler ~active:"m3"
    ~params:Soc.m3_params

let test_reconcile_native () =
  let nat = Native_run.create () in
  let soc = nat.Native_run.plat.Tk_drivers.Platform.soc in
  Ts.enable ~period_ns:50_000 soc.Soc.sampler;
  ignore (Native_run.suspend_resume_cycle nat);
  check_reconciles "native cycle" soc.Soc.sampler ~active:"a9"
    ~params:Soc.a9_params

(* a wrapped ring still reconciles: the ledger and the model both see
   only the retained window *)
let test_reconcile_wrapped () =
  let ark = Ark_run.create () in
  let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
  Ts.enable ~cap:64 ~period_ns:20_000 soc.Soc.sampler;
  (match Ark_run.suspend_resume_cycle ark with
  | `Ok -> ()
  | `Fell_back r -> Alcotest.failf "unexpected fallback: %s" r);
  Alcotest.(check bool) "ring wrapped" true (Ts.dropped soc.Soc.sampler > 0);
  check_reconciles "wrapped ARK cycle" soc.Soc.sampler ~active:"m3"
    ~params:Soc.m3_params

(* --------------------------- manifest golden ------------------------- *)

(* The deterministic manifest sections of one fixed ARK run, built the
   same way arksim's --manifest path builds them. The digest pins the
   schema AND the simulated values: it moves iff a metric, a gauge, or
   the simulation itself changes. *)
let ark_manifest_sections () =
  let ark = Ark_run.create () in
  let soc = (Ark_run.plat ark).Tk_drivers.Platform.soc in
  let ts = soc.Soc.sampler in
  Ts.enable ts;
  (match Ark_run.suspend_resume_cycle ark with
  | `Ok -> ()
  | `Fell_back r -> Alcotest.failf "unexpected fallback: %s" r);
  Ts.sample_now ts;
  let ledger = Attribution.integrate ts ~cores ~active:"m3" in
  let rows = Ts.rows ts in
  let first = rows.(0) and last = rows.(Array.length rows - 1) in
  let labels = Ts.labels ts in
  let counters =
    Manifest.Obj
      (List.filter_map
         (fun i ->
           let name = labels.(i) in
           if name = "t_ns" || name = "phase" then None
           else Some (name, Manifest.Int (last.(i) - first.(i))))
         (List.init (Array.length labels) Fun.id))
  in
  let metrics =
    Manifest.Obj
      [ ( "energy_uj",
          Manifest.Obj
            (List.map
               (fun c ->
                 (c, Manifest.Num (Attribution.component_total ledger c)))
               Attribution.components) );
        ("epochs", Manifest.Int ledger.Attribution.l_epochs) ]
  in
  (metrics, counters)

let golden_manifest_digest = "1b8db7b8db6ad1bc"

let test_manifest_digest () =
  let metrics, counters = ark_manifest_sections () in
  let got = Manifest.metrics_digest ~metrics ~counters in
  if got <> golden_manifest_digest then
    Alcotest.failf
      "manifest digest drifted: golden %s, got %s (TK_CAPTURE=1 to recapture)"
      golden_manifest_digest got

(* --------------------------- report compare -------------------------- *)

let write_tmp content =
  let path = Filename.temp_file "tk_manifest" ".json" in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

let test_compare_gate () =
  let base =
    write_tmp
      {|{"metrics": {"energy_uj": {"dram": 700.0}}, "host": {"sim_mips": 20.0}}|}
  in
  let good =
    write_tmp
      {|{"metrics": {"energy_uj": {"dram": 710.0}}, "host": {"sim_mips": 19.5}}|}
  in
  let bad =
    write_tmp
      {|{"metrics": {"energy_uj": {"dram": 1200.0}}, "host": {"sim_mips": 20.0}}|}
  in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ base; good; bad ])
    (fun () ->
      let verdicts, missing =
        Manifest.compare_manifests ~baseline:base ~candidate:good ~only:[]
          ~tolerance_pct:15.0
      in
      Alcotest.(check int) "both metrics compared" 2 (List.length verdicts);
      Alcotest.(check int) "nothing missing" 0 (List.length missing);
      Alcotest.(check bool) "within tolerance passes" false
        (List.exists (fun v -> v.Manifest.v_regressed) verdicts);
      let verdicts, _ =
        Manifest.compare_manifests ~baseline:base ~candidate:bad ~only:[]
          ~tolerance_pct:15.0
      in
      Alcotest.(check bool) "perturbed dram regresses (lower-better)" true
        (List.exists
           (fun v ->
             v.Manifest.v_regressed
             && v.Manifest.v_key = "metrics.energy_uj.dram")
           verdicts);
      (* direction heuristic: sim-MIPS dropping is the regression *)
      let slow =
        write_tmp
          {|{"metrics": {"energy_uj": {"dram": 700.0}}, "host": {"sim_mips": 10.0}}|}
      in
      Fun.protect
        ~finally:(fun () -> Sys.remove slow)
        (fun () ->
          let verdicts, _ =
            Manifest.compare_manifests ~baseline:base ~candidate:slow
              ~only:[ "sim_mips" ] ~tolerance_pct:15.0
          in
          Alcotest.(check int) "--only selects one metric" 1
            (List.length verdicts);
          Alcotest.(check bool) "throughput drop regresses (higher-better)"
            true
            (List.for_all (fun v -> v.Manifest.v_regressed) verdicts)))

(* cost-expressed-as-a-rate keys must gate as costs: before the polarity
   fix, the "rate" suffix classified miss_rate/fallback_rate as
   Higher_better and a worsened miss rate sailed through CI *)
let test_direction_polarity () =
  let dir =
    Alcotest.testable
      (fun ppf d ->
        Format.pp_print_string ppf
          (match d with
          | Manifest.Higher_better -> "Higher_better"
          | Manifest.Lower_better -> "Lower_better"
          | Manifest.Neutral -> "Neutral"))
      ( = )
  in
  let check key want =
    Alcotest.check dir key want (Manifest.direction_of key)
  in
  check "miss_rate" Manifest.Lower_better;
  check "fallback_rate" Manifest.Lower_better;
  check "chain_hit_rate" Manifest.Higher_better;
  check "metrics.cache.miss_rate" Manifest.Lower_better;
  check "sim_mips" Manifest.Higher_better;
  check "suite_wall_s" Manifest.Lower_better;
  check "blocks" Manifest.Neutral;
  (* span/latency telemetry keys are costs: durations, tail quantiles,
     tracer overhead and reconciliation residuals all regress upward *)
  check "wakeup_ns" Manifest.Lower_better;
  check "span_run_ns" Manifest.Lower_better;
  check "wakeup_p99" Manifest.Lower_better;
  check "span_overhead_pct" Manifest.Lower_better;
  check "span_overhead_off_pct" Manifest.Lower_better;
  check "recon_residual_pct" Manifest.Lower_better;
  (* spans/sec is a throughput, not a cost *)
  check "spans_per_sec" Manifest.Higher_better;
  (* certifier/elision counters: probe elisions and superblock chain
     length are benefits; certifier rejects and certify mismatches are
     costs — before the polarity fix all four fell to Neutral, whose
     |delta| gate fails CI on an improvement beyond tolerance *)
  check "probes_elided" Manifest.Higher_better;
  check "sb.chain_len" Manifest.Higher_better;
  check "certify_rejects" Manifest.Lower_better;
  check "certify_mismatch" Manifest.Lower_better;
  (* lockstep scheduler telemetry: skew and barrier waits are costs *)
  check "ls_max_skew_ns" Manifest.Lower_better;
  check "barrier_wait_ms" Manifest.Lower_better

let test_gate_miss_rate () =
  let base = write_tmp {|{"metrics": {"miss_rate": 0.02}}|} in
  let worse = write_tmp {|{"metrics": {"miss_rate": 0.05}}|} in
  let better = write_tmp {|{"metrics": {"miss_rate": 0.01}}|} in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ base; worse; better ])
    (fun () ->
      let verdicts, _ =
        Manifest.compare_manifests ~baseline:base ~candidate:worse ~only:[]
          ~tolerance_pct:15.0
      in
      Alcotest.(check bool) "worsened miss_rate regresses" true
        (List.for_all (fun v -> v.Manifest.v_regressed) verdicts);
      let verdicts, _ =
        Manifest.compare_manifests ~baseline:base ~candidate:better ~only:[]
          ~tolerance_pct:15.0
      in
      Alcotest.(check bool) "improved miss_rate passes" false
        (List.exists (fun v -> v.Manifest.v_regressed) verdicts))

let test_load_flat_roundtrip () =
  let doc =
    Manifest.Obj
      [ ("a", Manifest.Int 3);
        ( "nest",
          Manifest.Obj
            [ ("x", Manifest.Num 1.5); ("s", Manifest.Str "skip me") ] ) ]
  in
  let path = write_tmp (Manifest.to_string doc) in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let flat = Manifest.load_flat path in
      Alcotest.(check (option (float 0.0))) "int leaf" (Some 3.0)
        (List.assoc_opt "a" flat);
      Alcotest.(check (option (float 0.0))) "nested num leaf" (Some 1.5)
        (List.assoc_opt "nest.x" flat);
      Alcotest.(check (option (float 0.0))) "strings not numeric leaves" None
        (List.assoc_opt "nest.s" flat))

let () =
  if Sys.getenv_opt "TK_CAPTURE" <> None then begin
    let metrics, counters = ark_manifest_sections () in
    Printf.printf "let golden_manifest_digest = \"%s\"\n"
      (Manifest.metrics_digest ~metrics ~counters);
    exit 0
  end;
  Alcotest.run "timeseries"
    [ ( "sampler mechanics",
        [ Alcotest.test_case "period strides the virtual clock" `Quick
            test_period;
          Alcotest.test_case "phase marks close epochs" `Quick
            test_phase_boundary;
          Alcotest.test_case "add_gauge re-binds by name" `Quick
            test_gauge_rebind;
          Alcotest.test_case "ring wraps at capacity" `Quick test_wrap ] );
      ( "cost discipline",
        [ Alcotest.test_case "tick and sample_now allocate nothing" `Quick
            test_zero_alloc;
          Alcotest.test_case "sampling moves no simulated counter" `Quick
            test_sampling_neutral ] );
      ( "energy attribution",
        [ Alcotest.test_case "ARK ledger reconciles to 0.1%" `Quick
            test_reconcile_ark;
          Alcotest.test_case "native ledger reconciles to 0.1%" `Quick
            test_reconcile_native;
          Alcotest.test_case "wrapped ring still reconciles" `Quick
            test_reconcile_wrapped ] );
      ( "manifest + report",
        [ Alcotest.test_case "golden manifest digest" `Quick
            test_manifest_digest;
          Alcotest.test_case "tolerance gate and directions" `Quick
            test_compare_gate;
          Alcotest.test_case "cost-rate polarity (miss_rate et al.)" `Quick
            test_direction_polarity;
          Alcotest.test_case "worsened miss_rate fails the gate" `Quick
            test_gate_miss_rate;
          Alcotest.test_case "flat JSON reader round-trip" `Quick
            test_load_flat_roundtrip ] ) ]
